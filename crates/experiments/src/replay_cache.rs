//! Process-wide memoisation of captured L2 reference streams.
//!
//! Sweep cells that run the same benchmark against different L2
//! organisations share one captured [`L2Trace`] (see
//! `cpu_model::replay`): the first cell to ask for a `(benchmark,
//! L1-configuration, instruction-budget)` key pays the front-end once,
//! every other cell replays. Coordination is per-key — cells waiting on
//! an in-flight capture block on that key's latch only, so unrelated
//! cells (other benchmarks, other budgets) are never serialised.
//!
//! The cache is two-tier. The in-memory tier above is always on (when
//! `AC_REPLAY` is); setting `AC_REPLAY_DIR` adds a persistent tier (see
//! [`crate::replay_store`]): a memory miss first tries to load the
//! capture from disk, and a live capture is persisted for the next
//! process. Disk entries are integrity-checked end to end — anything
//! that does not decode cleanly is deleted and recaptured, never
//! replayed.
//!
//! * `AC_REPLAY=0` opts out (cells run the front-end directly);
//! * `AC_REPLAY_CACHE_MB` caps resident captured bytes (default 512MB),
//!   evicting least-recently-used entries past the cap;
//! * `AC_REPLAY_DIR` locates the disk tier (unset/empty: memory only).
//!
//! **Convention:** every `AC_*` variable in this module (and in
//! `replay_store`) is re-read on each call, never latched in a
//! `OnceLock` — a single process, and in particular a single test
//! binary, must be able to flip replay behaviour between sweeps. Cache
//! derived *state*, not environment *configuration*.
//!
//! Telemetry: `replay_cache_hits_total` / `replay_cache_captures_total`
//! / `replay_cache_evictions_total` counters and a `replay_cache_bytes`
//! gauge, plus the disk tier's `replay_store_*` family
//! (`disk_hits`/`writes`/`corrupt_entries`/`recaptures`).

use crate::replay_store;
use cpu_model::{capture_functional, CpuConfig, L2Trace};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use workloads::Benchmark;

/// Whether memoised replay is enabled (default yes; `AC_REPLAY=0` opts
/// out). Read per call — not cached — so tests can exercise both paths
/// in one process.
pub fn replay_enabled() -> bool {
    !matches!(std::env::var("AC_REPLAY").as_deref(), Ok("0"))
}

/// Resident-byte cap for captured traces (`AC_REPLAY_CACHE_MB`,
/// default 512). Read per call, like every other knob here — see the
/// module header.
fn cap_bytes() -> usize {
    let mb = match std::env::var("AC_REPLAY_CACHE_MB") {
        Ok(v) => v.trim().parse().unwrap_or_else(|_| {
            ac_telemetry::warn!("AC_REPLAY_CACHE_MB={v:?} is not a number; using 512");
            512
        }),
        Err(_) => 512usize,
    };
    mb.saturating_mul(1024 * 1024)
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    benchmark: String,
    l1_sig: u64,
    insts: u64,
}

/// FNV-1a over the L1 parameters that shape the captured stream. The
/// L1 seeds are fixed constants inside `Hierarchy::new`, so the
/// geometry/latency fields pin the configuration completely.
fn l1_signature(config: &CpuConfig) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for p in [config.l1i, config.l1d] {
        mix(p.size_bytes as u64);
        mix(p.line_bytes as u64);
        mix(p.associativity as u64);
        mix(u64::from(p.hit_latency));
    }
    h
}

#[derive(Debug, Default)]
enum LatchState {
    #[default]
    Pending,
    Ready(Arc<L2Trace>),
    Failed,
}

#[derive(Debug, Default)]
struct Latch {
    state: Mutex<LatchState>,
    cv: Condvar,
}

#[derive(Debug)]
enum Slot {
    Ready {
        trace: Arc<L2Trace>,
        bytes: usize,
        stamp: u64,
    },
    InFlight(Arc<Latch>),
}

#[derive(Debug, Default)]
struct Store {
    map: HashMap<Key, Slot>,
    clock: u64,
    bytes: usize,
}

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(Mutex::default)
}

/// Empties the cache (tests, and the sweep benchmark's cold-start
/// timing).
pub fn clear() {
    let mut s = store().lock().expect("replay cache poisoned");
    // Pending captures stay registered: removing an InFlight slot here
    // would orphan its waiters' fallback path, so only drop Ready data.
    s.map.retain(|_, slot| matches!(slot, Slot::InFlight(_)));
    s.bytes = 0;
    gauge_bytes(0);
}

fn gauge_bytes(bytes: usize) {
    ac_telemetry::gauge_set("replay_cache_bytes", bytes as f64);
}

/// Marks the in-flight capture failed if the capturing cell unwinds, so
/// waiters fall back to capturing for themselves instead of hanging.
struct CaptureGuard {
    key: Option<Key>,
    latch: Arc<Latch>,
}

impl CaptureGuard {
    fn defuse(&mut self) {
        self.key = None;
    }
}

impl Drop for CaptureGuard {
    fn drop(&mut self) {
        let Some(key) = self.key.take() else { return };
        let mut s = store().lock().expect("replay cache poisoned");
        if matches!(s.map.get(&key), Some(Slot::InFlight(l)) if Arc::ptr_eq(l, &self.latch)) {
            s.map.remove(&key);
        }
        drop(s);
        *self.latch.state.lock().expect("latch poisoned") = LatchState::Failed;
        self.latch.cv.notify_all();
    }
}

/// Returns the captured trace for `(bench, config, insts)`, capturing it
/// (and publishing it to every waiting cell) if absent. The boolean is
/// `true` when *this* call ran the front-end.
pub fn get_or_capture(bench: &Benchmark, config: &CpuConfig, insts: u64) -> (Arc<L2Trace>, bool) {
    let key = Key {
        benchmark: bench.name.clone(),
        l1_sig: l1_signature(config),
        insts,
    };
    loop {
        let latch = {
            let mut s = store().lock().expect("replay cache poisoned");
            s.clock += 1;
            let now = s.clock;
            match s.map.get_mut(&key) {
                Some(Slot::Ready { trace, stamp, .. }) => {
                    *stamp = now;
                    let trace = trace.clone();
                    drop(s);
                    ac_telemetry::counter_add("replay_cache_hits_total", 1);
                    return (trace, false);
                }
                Some(Slot::InFlight(latch)) => latch.clone(),
                None => {
                    let latch = Arc::new(Latch::default());
                    s.map.insert(key.clone(), Slot::InFlight(latch.clone()));
                    drop(s);
                    return capture_and_publish(bench, config, insts, key, latch);
                }
            }
        };
        // Another cell is capturing this key: wait on its latch only.
        let mut state = latch.state.lock().expect("latch poisoned");
        while matches!(*state, LatchState::Pending) {
            state = latch.cv.wait(state).expect("latch poisoned");
        }
        match &*state {
            LatchState::Ready(trace) => {
                ac_telemetry::counter_add("replay_cache_hits_total", 1);
                return (trace.clone(), false);
            }
            // The capturing cell died (panic / fault injection): retry
            // the whole entry so one cell claims a fresh capture.
            LatchState::Failed => continue,
            LatchState::Pending => unreachable!("wait loop exits only on a terminal state"),
        }
    }
}

/// Fills a registered `InFlight` slot: memory miss → try the disk tier
/// (under its per-entry lock) → capture live. Returns the trace and
/// whether *this* call ran the front-end. Disk loads count as
/// `replay_store_disk_hits_total`, not captures; a corrupt entry or a
/// lock timeout counts one `replay_store_recaptures_total` on top of
/// the capture it forces.
fn capture_and_publish(
    bench: &Benchmark,
    config: &CpuConfig,
    insts: u64,
    key: Key,
    latch: Arc<Latch>,
) -> (Arc<L2Trace>, bool) {
    let mut guard = CaptureGuard {
        key: Some(key.clone()),
        latch: latch.clone(),
    };
    let tier = replay_store::open(&key.benchmark, key.l1_sig, key.insts);
    if let replay_store::Tier::Ready(handle) = &tier {
        match handle.load() {
            replay_store::Loaded::Hit(trace) => {
                let trace = Arc::new(*trace);
                guard.defuse();
                publish(key, latch, trace.clone());
                return (trace, false);
            }
            replay_store::Loaded::Miss => {}
            replay_store::Loaded::Failed => {
                ac_telemetry::counter_add("replay_store_recaptures_total", 1);
            }
        }
    }
    if matches!(tier, replay_store::Tier::LockTimeout) {
        ac_telemetry::counter_add("replay_store_recaptures_total", 1);
    }
    let trace = Arc::new(capture_functional(config, bench.spec.generator(), insts));
    guard.defuse();
    if let replay_store::Tier::Ready(handle) = &tier {
        handle.save(&trace);
    }
    drop(tier); // releases the per-entry lock file
    ac_telemetry::counter_add("replay_cache_captures_total", 1);
    publish(key, latch, trace.clone());
    (trace, true)
}

/// Publishes a ready trace into the in-memory tier, wakes the key's
/// waiters, and runs the LRU eviction loop.
fn publish(key: Key, latch: Arc<Latch>, trace: Arc<L2Trace>) {
    let bytes = trace.approx_bytes();
    let mut s = store().lock().expect("replay cache poisoned");
    s.clock += 1;
    let stamp = s.clock;
    s.map.insert(
        key,
        Slot::Ready {
            trace: trace.clone(),
            bytes,
            stamp,
        },
    );
    s.bytes += bytes;
    let mut evictions = 0u64;
    while s.bytes > cap_bytes() {
        // Evict the least-recently-stamped Ready entry (the entry just
        // inserted carries the freshest stamp, so it goes last, and only
        // when it alone exceeds the cap).
        let Some(victim) = s
            .map
            .iter()
            .filter_map(|(k, slot)| match slot {
                Slot::Ready { stamp, .. } => Some((*stamp, k.clone())),
                Slot::InFlight(_) => None,
            })
            .min_by_key(|(stamp, _)| *stamp)
            .map(|(_, k)| k)
        else {
            break;
        };
        if let Some(Slot::Ready { bytes, .. }) = s.map.remove(&victim) {
            s.bytes -= bytes;
            evictions += 1;
        }
    }
    let resident = s.bytes;
    drop(s);
    *latch.state.lock().expect("latch poisoned") = LatchState::Ready(trace);
    latch.cv.notify_all();
    if evictions > 0 {
        ac_telemetry::counter_add("replay_cache_evictions_total", evictions);
    }
    gauge_bytes(resident);
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::primary_suite;

    #[test]
    fn capture_is_shared_across_concurrent_cells() {
        clear();
        let b = &primary_suite()[0];
        let cfg = CpuConfig::paper_default();
        let insts = 30_000;
        let results: Vec<(Arc<L2Trace>, bool)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| get_or_capture(b, &cfg, insts)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let captured: usize = results.iter().filter(|(_, c)| *c).count();
        assert_eq!(captured, 1, "exactly one cell pays the front-end");
        for (t, _) in &results {
            assert!(Arc::ptr_eq(t, &results[0].0), "all cells share one trace");
        }
        assert_eq!(results[0].0.front_stats().instructions, insts);
    }

    #[test]
    fn distinct_budgets_get_distinct_entries() {
        clear();
        let b = &primary_suite()[1];
        let cfg = CpuConfig::paper_default();
        let (a, ca) = get_or_capture(b, &cfg, 10_000);
        let (bb, cb) = get_or_capture(b, &cfg, 20_000);
        let (a2, ca2) = get_or_capture(b, &cfg, 10_000);
        assert!(ca && cb && !ca2);
        assert!(Arc::ptr_eq(&a, &a2));
        assert_eq!(a.front_stats().instructions, 10_000);
        assert_eq!(bb.front_stats().instructions, 20_000);
    }

    #[test]
    fn l1_signature_separates_configs() {
        let a = CpuConfig::paper_default();
        let mut b = a;
        b.l1d.size_bytes *= 2;
        assert_ne!(l1_signature(&a), l1_signature(&b));
        assert_eq!(l1_signature(&a), l1_signature(&a.clone()));
    }
}
