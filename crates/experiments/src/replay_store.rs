//! The on-disk tier of the replay cache: persisted [`L2Trace`] captures
//! under `AC_REPLAY_DIR`, in the crash-safe ACRS format of
//! `cpu_model::replay::persist`.
//!
//! Entries are named
//! `{benchmark}-{l1_sig:016x}-{insts}-{fingerprint:016x}.acrs`, where
//! the fingerprint mixes the ACRS format revision, the telemetry
//! timeline window the capture was scheduled for, **and** the key
//! itself — so a file renamed (or copied) over another entry's path
//! passes its checksums but fails the fingerprint check instead of
//! replaying the wrong trace.
//!
//! Cross-process safety comes from per-entry `*.lock` files taken
//! around the load-or-capture-and-save critical section, with a polled
//! timeout and stale-lock stealing (a crashed writer's lock is reclaimed
//! once its mtime exceeds the staleness horizon). On lock timeout the
//! caller captures live without touching the entry — correctness never
//! depends on winning the lock, only on never reading a file someone is
//! mid-rename on a non-atomic filesystem.
//!
//! Every failure degrades to recapture: a missing directory, an
//! unreadable file, bad magic, version or fingerprint skew, a CRC
//! mismatch, or a short read logs a warn, deletes the bad entry, and
//! reports a miss. No path returns a trace that did not decode cleanly.
//!
//! All entry I/O goes through the [`ReplayIo`] trait so the
//! fault-injection suite (and `AC_REPLAY_FAULT=torn_write=…`,
//! `enospc`, `eio`, `short_read=…`, `bit_flip=OFF:MASK`, `seed=…`) can
//! interpose deterministic faults; see [`set_io`].
//!
//! Per the `replay_cache` convention, every environment variable here is
//! re-read on each call — nothing is latched in a `OnceLock` — except
//! the `AC_REPLAY_FAULT` plan, which must persist across calls so each
//! armed fault fires exactly once (call [`set_io`]`(None)` to re-arm).
//!
//! Telemetry: `replay_store_disk_hits_total`, `replay_store_writes_total`,
//! `replay_store_corrupt_entries_total`, `replay_store_recaptures_total`.

use cpu_model::replay::persist::{self, FaultyIo, IoFaultPlan, PersistError, ReplayIo, StdIo};
use cpu_model::L2Trace;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime};

/// File extension of a persisted capture.
pub const ENTRY_EXT: &str = "acrs";

/// The store directory, re-read from `AC_REPLAY_DIR` on every call
/// (empty or unset disables the disk tier).
pub fn dir() -> Option<PathBuf> {
    match std::env::var("AC_REPLAY_DIR") {
        Ok(v) if !v.trim().is_empty() => Some(PathBuf::from(v)),
        _ => None,
    }
}

fn env_ms(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => v.trim().parse().unwrap_or_else(|_| {
            ac_telemetry::warn!("{name}={v:?} is not a number; using {default}");
            default
        }),
        Err(_) => default,
    }
}

/// How long to wait for another process's per-entry lock before giving
/// up and capturing live (`AC_REPLAY_LOCK_TIMEOUT_MS`, default 2000).
fn lock_timeout() -> Duration {
    Duration::from_millis(env_ms("AC_REPLAY_LOCK_TIMEOUT_MS", 2_000))
}

/// Age past which a lock file is presumed orphaned by a crashed writer
/// and stolen (`AC_REPLAY_LOCK_STALE_MS`, default 30000).
fn lock_stale() -> Duration {
    Duration::from_millis(env_ms("AC_REPLAY_LOCK_STALE_MS", 30_000))
}

fn io_slot() -> &'static Mutex<Option<Arc<dyn ReplayIo>>> {
    static IO: OnceLock<Mutex<Option<Arc<dyn ReplayIo>>>> = OnceLock::new();
    IO.get_or_init(Mutex::default)
}

/// The [`ReplayIo`] implementation entry I/O runs through. Defaults to
/// the real filesystem, or a [`FaultyIo`] when `AC_REPLAY_FAULT` holds a
/// parseable fault plan. The chosen instance is held (not re-built per
/// call) so once-firing faults stay fired.
pub fn io() -> Arc<dyn ReplayIo> {
    let mut slot = io_slot().lock().expect("replay store io poisoned");
    if let Some(io) = slot.as_ref() {
        return io.clone();
    }
    let io: Arc<dyn ReplayIo> = match std::env::var("AC_REPLAY_FAULT") {
        Ok(spec) if !spec.trim().is_empty() => match IoFaultPlan::parse(&spec) {
            Ok(plan) => {
                ac_telemetry::warn!("AC_REPLAY_FAULT armed: {plan:?}");
                Arc::new(FaultyIo::new(plan))
            }
            Err(e) => {
                ac_telemetry::warn!("AC_REPLAY_FAULT={spec:?} did not parse ({e}); ignoring");
                Arc::new(StdIo)
            }
        },
        _ => Arc::new(StdIo),
    };
    *slot = Some(io.clone());
    io
}

/// Replaces the store's [`ReplayIo`] (tests inject faults here without
/// the environment); `None` resets to re-reading `AC_REPLAY_FAULT`.
pub fn set_io(io: Option<Arc<dyn ReplayIo>>) {
    *io_slot().lock().expect("replay store io poisoned") = io;
}

fn fnv_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The fingerprint stored inside (and suffixed onto the name of) an
/// entry: format + capture-window fingerprint mixed with the key, so
/// neither configuration skew nor a renamed file can replay wrongly.
pub fn entry_fingerprint(benchmark: &str, l1_sig: u64, insts: u64) -> u64 {
    persist::fnv(&[
        persist::config_fingerprint(),
        fnv_str(benchmark),
        l1_sig,
        insts,
    ])
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Path of the entry for a key under `dir`.
pub fn entry_path(dir: &Path, benchmark: &str, l1_sig: u64, insts: u64) -> PathBuf {
    let fp = entry_fingerprint(benchmark, l1_sig, insts);
    dir.join(format!(
        "{}-{l1_sig:016x}-{insts}-{fp:016x}.{ENTRY_EXT}",
        sanitize(benchmark)
    ))
}

/// A held per-entry lock file; removed on drop.
#[derive(Debug)]
struct LockFile {
    path: PathBuf,
}

impl Drop for LockFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

fn try_lock(lock_path: &Path) -> io::Result<Option<LockFile>> {
    match std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(lock_path)
    {
        Ok(mut f) => {
            let _ = writeln!(f, "{}", std::process::id());
            Ok(Some(LockFile {
                path: lock_path.to_path_buf(),
            }))
        }
        Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(None),
        Err(e) => Err(e),
    }
}

fn lock_age(lock_path: &Path) -> Option<Duration> {
    let mtime = std::fs::metadata(lock_path).ok()?.modified().ok()?;
    SystemTime::now().duration_since(mtime).ok()
}

/// Outcome of [`open`]: whether the disk tier participates in this
/// capture at all, and under what protection.
#[derive(Debug)]
pub enum Tier {
    /// `AC_REPLAY_DIR` unset (or the directory could not be created):
    /// in-memory caching only.
    Disabled,
    /// Lock held — load, and persist a fresh capture, through the
    /// handle.
    Ready(Handle),
    /// Another process held the entry lock past the timeout: capture
    /// live, do not read or write the entry.
    LockTimeout,
}

/// A locked disk-store entry.
#[derive(Debug)]
pub struct Handle {
    path: PathBuf,
    fingerprint: u64,
    _lock: LockFile,
}

/// What a [`Handle::load`] found.
#[derive(Debug)]
pub enum Loaded {
    /// Entry decoded and validated cleanly.
    Hit(Box<L2Trace>),
    /// No entry on disk.
    Miss,
    /// Entry (or the I/O under it) was bad; it has been deleted and the
    /// failure logged + counted. Caller captures live.
    Failed,
}

/// Opens (and locks) the disk-store entry for a key, if the tier is
/// enabled. Lock-acquisition polling stays under [`lock_timeout`],
/// stealing locks older than [`lock_stale`].
pub fn open(benchmark: &str, l1_sig: u64, insts: u64) -> Tier {
    let Some(dir) = dir() else {
        return Tier::Disabled;
    };
    if let Err(e) = std::fs::create_dir_all(&dir) {
        ac_telemetry::warn!(
            "replay store: cannot create AC_REPLAY_DIR {}: {e}; disk tier off",
            dir.display()
        );
        return Tier::Disabled;
    }
    let path = entry_path(&dir, benchmark, l1_sig, insts);
    let mut lock_path = path.clone().into_os_string();
    lock_path.push(".lock");
    let lock_path = PathBuf::from(lock_path);
    let deadline = Instant::now() + lock_timeout();
    let stale = lock_stale();
    loop {
        match try_lock(&lock_path) {
            Ok(Some(lock)) => {
                return Tier::Ready(Handle {
                    fingerprint: entry_fingerprint(benchmark, l1_sig, insts),
                    path,
                    _lock: lock,
                });
            }
            Ok(None) => {
                if lock_age(&lock_path).is_some_and(|age| age > stale) {
                    ac_telemetry::warn!(
                        "replay store: stealing stale lock {} (older than {stale:?})",
                        lock_path.display()
                    );
                    let _ = std::fs::remove_file(&lock_path);
                    continue;
                }
                if Instant::now() >= deadline {
                    ac_telemetry::warn!(
                        "replay store: timed out waiting for {}; capturing live",
                        lock_path.display()
                    );
                    return Tier::LockTimeout;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => {
                ac_telemetry::warn!(
                    "replay store: cannot take lock {}: {e}; capturing live",
                    lock_path.display()
                );
                return Tier::LockTimeout;
            }
        }
    }
}

impl Handle {
    /// Loads and validates the locked entry. Anything short of a clean
    /// decode deletes the entry and reports [`Loaded::Failed`] — a
    /// corrupt file is never a reason to fail the run, only to recapture.
    pub fn load(&self) -> Loaded {
        let io = io();
        let bytes = match io.read(&self.path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Loaded::Miss,
            Err(e) => {
                ac_telemetry::warn!(
                    "replay store: read of {} failed ({e}); deleting and recapturing",
                    self.path.display()
                );
                self.discard(&*io);
                return Loaded::Failed;
            }
        };
        match persist::decode_trace(&bytes, self.fingerprint) {
            Ok(trace) => {
                ac_telemetry::counter_add("replay_store_disk_hits_total", 1);
                Loaded::Hit(Box::new(trace))
            }
            Err(e) => {
                ac_telemetry::warn!(
                    "replay store: {} is unusable ({e}); deleting and recapturing",
                    self.path.display()
                );
                self.discard(&*io);
                Loaded::Failed
            }
        }
    }

    /// Persists a fresh capture under the held lock. Write failures are
    /// logged and swallowed — the store is a cache, and `ENOSPC` must
    /// never fail a sweep.
    pub fn save(&self, trace: &L2Trace) {
        match persist::save_trace(&*io(), &self.path, trace, self.fingerprint) {
            Ok(_) => ac_telemetry::counter_add("replay_store_writes_total", 1),
            Err(e) => ac_telemetry::warn!(
                "replay store: persisting {} failed ({e}); entry stays absent",
                self.path.display()
            ),
        }
    }

    fn discard(&self, io: &dyn ReplayIo) {
        ac_telemetry::counter_add("replay_store_corrupt_entries_total", 1);
        if let Err(e) = io.remove(&self.path) {
            ac_telemetry::warn!(
                "replay store: could not delete bad entry {}: {e}",
                self.path.display()
            );
        }
    }
}

/// One entry found by [`scan`].
#[derive(Debug, Clone)]
pub struct EntryInfo {
    /// Entry file path.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
    /// Fingerprint parsed from the file name (`None`: foreign name).
    pub fingerprint: Option<u64>,
}

/// Lists the `.acrs` entries of a store directory, sorted by name.
pub fn scan(dir: &Path) -> io::Result<Vec<EntryInfo>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some(ENTRY_EXT) {
            continue;
        }
        let bytes = entry.metadata()?.len();
        out.push(EntryInfo {
            fingerprint: name_fingerprint(&path),
            path,
            bytes,
        });
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

/// Parses the `-{fingerprint:016x}.acrs` suffix off an entry name.
fn name_fingerprint(path: &Path) -> Option<u64> {
    let stem = path.file_stem()?.to_str()?;
    let hex = stem.rsplit('-').next()?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// One entry's verification verdict: decoded event count, or why not.
#[derive(Debug)]
pub struct Verified {
    /// The entry checked.
    pub info: EntryInfo,
    /// `Ok(events)` if the entry decodes cleanly against the
    /// fingerprint in its own name; the failure text otherwise.
    pub result: Result<usize, String>,
}

/// Integrity-checks every entry in a store directory (against the
/// fingerprint each file's *name* claims, so entries written under
/// other configurations still verify). Read-only: bad entries are
/// reported, not deleted — that is [`Handle::load`]'s (or `gc`'s) job.
pub fn verify_dir(dir: &Path) -> io::Result<Vec<Verified>> {
    let io = io();
    scan(dir)?
        .into_iter()
        .map(|info| {
            let result = match info.fingerprint {
                None => Err("file name lacks a fingerprint suffix".to_string()),
                Some(fp) => match io
                    .read(&info.path)
                    .map_err(PersistError::Io)
                    .and_then(|bytes| persist::decode_trace(&bytes, fp))
                {
                    Ok(trace) => Ok(trace.len()),
                    Err(e) => Err(e.to_string()),
                },
            };
            Ok(Verified { info, result })
        })
        .collect()
}

/// What [`gc_dir`] removed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct GcStats {
    /// Orphaned `*.tmp.*` files from interrupted writers.
    pub tmp_files: usize,
    /// Lock files older than the staleness horizon.
    pub stale_locks: usize,
    /// Entries that failed verification.
    pub corrupt_entries: usize,
}

/// Sweeps a store directory: deletes leftover temp files, stale locks,
/// and entries that no longer verify. Live locks (younger than
/// [`lock_stale`]) are left alone.
pub fn gc_dir(dir: &Path) -> io::Result<GcStats> {
    let mut stats = GcStats::default();
    let stale = lock_stale();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.contains(".tmp.") {
            std::fs::remove_file(&path)?;
            stats.tmp_files += 1;
        } else if name.ends_with(".lock") && lock_age(&path).is_some_and(|age| age > stale) {
            std::fs::remove_file(&path)?;
            stats.stale_locks += 1;
        }
    }
    for v in verify_dir(dir)? {
        if v.result.is_err() {
            std::fs::remove_file(&v.info.path)?;
            stats.corrupt_entries += 1;
        }
    }
    Ok(stats)
}
