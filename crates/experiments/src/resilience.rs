//! Run supervision for long sweeps: panic isolation, per-cell deadlines,
//! bounded retries, and journal-based checkpoint/resume.
//!
//! The paper's evaluation is a large (benchmark × L2-organisation) grid;
//! a single panicking or wedged cell must not abort the sweep, and an
//! interrupted sweep must be restartable without recomputing finished
//! cells. [`run_sweep`] executes each cell on its own worker thread under
//! `catch_unwind`, enforces an optional deadline, retries a bounded number
//! of times, and appends every settled cell to a
//! `results/<figure>.journal.jsonl` checkpoint (written atomically:
//! temp file, then rename). Restarting with `AC_RESUME=1` skips cells the
//! journal proves complete.

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Process exit code: every cell completed.
pub const EXIT_OK: i32 = 0;
/// Process exit code: the sweep finished but some cells failed or timed
/// out — the artifacts on disk are partial.
pub const EXIT_PARTIAL: i32 = 2;
/// Process exit code: the request itself was malformed (bad config, bad
/// geometry, unknown benchmark, unreadable trace).
pub const EXIT_INVALID_INPUT: i32 = 3;

/// A typed error for the experiment pipeline, replacing ad-hoc
/// `unwrap`/`expect` on the sweep hot paths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ExperimentError {
    /// Filesystem / IO failure (message retains the underlying error).
    Io(String),
    /// The request was malformed; names the offending field when known.
    InvalidInput(String),
    /// An impossible cache geometry was requested.
    Geometry(String),
    /// A trace file could not be read or parsed.
    Trace(String),
    /// A worker panicked; carries the panic message.
    Panic(String),
    /// A cell exceeded its deadline.
    Timeout {
        /// The deadline that was exceeded, in seconds.
        secs: f64,
    },
    /// (De)serialisation of a result or journal entry failed.
    Serde(String),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Io(m) => write!(f, "I/O error: {m}"),
            ExperimentError::InvalidInput(m) => write!(f, "invalid input: {m}"),
            ExperimentError::Geometry(m) => write!(f, "bad cache geometry: {m}"),
            ExperimentError::Trace(m) => write!(f, "trace error: {m}"),
            ExperimentError::Panic(m) => write!(f, "worker panicked: {m}"),
            ExperimentError::Timeout { secs } => {
                write!(f, "cell exceeded its {secs}s deadline")
            }
            ExperimentError::Serde(m) => write!(f, "serialisation error: {m}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<io::Error> for ExperimentError {
    fn from(e: io::Error) -> Self {
        ExperimentError::Io(e.to_string())
    }
}

impl From<cache_sim::GeometryError> for ExperimentError {
    fn from(e: cache_sim::GeometryError) -> Self {
        ExperimentError::Geometry(e.to_string())
    }
}

impl From<workloads::trace_io::TraceError> for ExperimentError {
    fn from(e: workloads::trace_io::TraceError) -> Self {
        ExperimentError::Trace(e.to_string())
    }
}

impl From<serde_json::Error> for ExperimentError {
    fn from(e: serde_json::Error) -> Self {
        ExperimentError::Serde(e.to_string())
    }
}

/// Extracts a human-readable message from a `catch_unwind` payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// True when the environment requests journal-based resume
/// (`AC_RESUME=1`, `true`, or `yes`).
pub fn resume_from_env() -> bool {
    std::env::var("AC_RESUME")
        .map(|v| matches!(v.as_str(), "1" | "true" | "yes"))
        .unwrap_or(false)
}

/// The canonical journal path for a figure: `dir/<figure>.journal.jsonl`.
pub fn journal_path(dir: &Path, figure: &str) -> PathBuf {
    dir.join(format!("{figure}.journal.jsonl"))
}

/// How a journalled cell settled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum JournalStatus {
    /// The cell completed and its value is recorded.
    Ok,
    /// The cell failed after all retries.
    Failed,
    /// The cell exceeded its deadline after all retries.
    TimedOut,
}

/// One line of the checkpoint journal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JournalEntry {
    /// Stable cell key (must be identical across restarts).
    pub key: String,
    /// How the cell settled.
    pub status: JournalStatus,
    /// Attempts consumed (1 = no retry needed).
    pub attempts: u32,
    /// The cell's result, for `Ok` entries.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub value: Option<serde_json::Value>,
    /// The error message, for `Failed`/`TimedOut` entries.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
}

/// An append-only JSONL checkpoint journal, rewritten atomically
/// (write `.tmp`, then rename) on every append so a kill can never leave
/// a torn line that a resumed run would trust.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    entries: Vec<JournalEntry>,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, loading any entries an
    /// earlier run left behind. Malformed lines — e.g. the torn tail of a
    /// journal written by a non-atomic writer — are skipped, not fatal:
    /// the worst case is recomputing the cell they described.
    pub fn open(path: impl Into<PathBuf>) -> Result<Journal, ExperimentError> {
        let path = path.into();
        let mut entries = Vec::new();
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                for line in text.lines() {
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    if let Ok(entry) = serde_json::from_str::<JournalEntry>(line) {
                        entries.push(entry);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        Ok(Journal { path, entries })
    }

    /// The journal's on-disk location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// All loaded/appended entries, oldest first.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Map of key → recorded value for every `Ok` entry (later entries
    /// win, so a cell that failed and then succeeded on a rerun counts).
    pub fn completed(&self) -> HashMap<String, serde_json::Value> {
        let mut done = HashMap::new();
        for e in &self.entries {
            match (e.status, &e.value) {
                (JournalStatus::Ok, Some(v)) => {
                    done.insert(e.key.clone(), v.clone());
                }
                _ => {
                    done.remove(&e.key);
                }
            }
        }
        done
    }

    /// Appends one entry and atomically rewrites the journal file.
    pub fn append(&mut self, entry: JournalEntry) -> Result<(), ExperimentError> {
        self.entries.push(entry);
        let mut text = String::new();
        for e in &self.entries {
            text.push_str(&serde_json::to_string(e)?);
            text.push('\n');
        }
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        crate::report::write_atomic(&self.path, text.as_bytes())?;
        Ok(())
    }
}

/// Supervisor policy for one sweep.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Per-attempt wall-clock deadline; `None` waits indefinitely.
    pub deadline: Option<Duration>,
    /// Extra attempts after the first failure/timeout (the issue's
    /// "one bounded retry" is the default).
    pub retries: u32,
    /// Checkpoint journal location; `None` disables journalling.
    pub journal: Option<PathBuf>,
    /// Skip cells the journal proves complete (see [`resume_from_env`]).
    pub resume: bool,
    /// Worker threads; `0` uses the available parallelism.
    pub threads: usize,
    /// Register the sweep under this name in the live progress registry
    /// ([`ac_telemetry::progress`]), so a `--serve` introspection server
    /// can report cells done/running/failed and an ETA mid-run.
    pub progress: Option<String>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            deadline: None,
            retries: 1,
            journal: None,
            resume: false,
            threads: 0,
            progress: None,
        }
    }
}

impl SupervisorConfig {
    /// A config journalling to [`journal_path`]`(dir, figure)` with resume
    /// taken from the `AC_RESUME` environment variable, reporting live
    /// progress under the figure's name.
    pub fn journalled(dir: &Path, figure: &str) -> Self {
        SupervisorConfig {
            journal: Some(journal_path(dir, figure)),
            resume: resume_from_env(),
            progress: Some(figure.to_string()),
            ..SupervisorConfig::default()
        }
    }
}

/// How one cell of a supervised sweep settled.
#[derive(Debug)]
pub enum CellOutcome<R> {
    /// Computed in this run.
    Done(R),
    /// Loaded from the journal of a previous run (not recomputed).
    Resumed(R),
    /// Failed after all attempts.
    Failed(ExperimentError),
    /// Exceeded the deadline on all attempts; the last worker thread is
    /// abandoned (detached), not killed.
    TimedOut(Duration),
}

impl<R> CellOutcome<R> {
    /// The cell's value, if it completed (computed or resumed).
    pub fn value(&self) -> Option<&R> {
        match self {
            CellOutcome::Done(r) | CellOutcome::Resumed(r) => Some(r),
            _ => None,
        }
    }

    /// True for `Done`/`Resumed`.
    pub fn is_ok(&self) -> bool {
        self.value().is_some()
    }
}

/// One supervised cell: key, consumed attempts, outcome.
#[derive(Debug)]
pub struct CellReport<R> {
    /// The cell's stable key.
    pub key: String,
    /// Attempts consumed (0 when resumed from the journal).
    pub attempts: u32,
    /// How the cell settled.
    pub outcome: CellOutcome<R>,
}

/// Result of a supervised sweep, order-aligned with the input cells.
#[derive(Debug)]
pub struct SweepReport<R> {
    /// Per-cell reports, in input order.
    pub cells: Vec<CellReport<R>>,
}

impl<R> SweepReport<R> {
    /// Cells computed in this run.
    pub fn done(&self) -> usize {
        self.count(|c| matches!(c, CellOutcome::Done(_)))
    }

    /// Cells skipped because the journal proved them complete.
    pub fn resumed(&self) -> usize {
        self.count(|c| matches!(c, CellOutcome::Resumed(_)))
    }

    /// Cells that failed after all attempts.
    pub fn failed(&self) -> usize {
        self.count(|c| matches!(c, CellOutcome::Failed(_)))
    }

    /// Cells that exceeded their deadline on all attempts.
    pub fn timed_out(&self) -> usize {
        self.count(|c| matches!(c, CellOutcome::TimedOut(_)))
    }

    fn count(&self, pred: impl Fn(&CellOutcome<R>) -> bool) -> usize {
        self.cells.iter().filter(|c| pred(&c.outcome)).count()
    }

    /// True when every cell completed (computed or resumed).
    pub fn is_complete(&self) -> bool {
        self.cells.iter().all(|c| c.outcome.is_ok())
    }

    /// The process exit code this sweep deserves:
    /// [`EXIT_OK`] when complete, [`EXIT_PARTIAL`] otherwise.
    pub fn exit_code(&self) -> i32 {
        if self.is_complete() {
            EXIT_OK
        } else {
            EXIT_PARTIAL
        }
    }

    /// Values of completed cells, in input order.
    pub fn values(&self) -> Vec<&R> {
        self.cells
            .iter()
            .filter_map(|c| c.outcome.value())
            .collect()
    }

    /// One-line human summary (`9 cells: 8 ok, 1 failed, ...`).
    pub fn summary(&self) -> String {
        format!(
            "{} cells: {} ok ({} resumed), {} failed, {} timed out",
            self.cells.len(),
            self.done() + self.resumed(),
            self.resumed(),
            self.failed(),
            self.timed_out()
        )
    }
}

/// Runs `f` over every cell under supervision: each attempt executes on a
/// dedicated worker thread under `catch_unwind`, bounded by
/// `cfg.deadline`, with up to `cfg.retries` retries; settled cells are
/// appended to the journal. With `cfg.resume`, cells whose key the
/// journal proves complete are returned as [`CellOutcome::Resumed`]
/// without recomputation.
///
/// Cell keys produced by `key_of` must be stable across process restarts
/// — they are the resume identity.
pub fn run_sweep<T, R, F>(
    cells: &[T],
    cfg: &SupervisorConfig,
    key_of: impl Fn(&T) -> String,
    f: F,
) -> Result<SweepReport<R>, ExperimentError>
where
    T: Clone + Send + Sync + 'static,
    R: Serialize + DeserializeOwned + Send + 'static,
    F: Fn(T) -> Result<R, ExperimentError> + Send + Sync + 'static,
{
    let journal = match &cfg.journal {
        Some(path) => Some(Mutex::new(Journal::open(path)?)),
        None => None,
    };
    let completed: HashMap<String, serde_json::Value> = match (&journal, cfg.resume) {
        (Some(j), true) => lock(j).completed(),
        _ => HashMap::new(),
    };
    let keys: Vec<String> = cells.iter().map(&key_of).collect();
    let f = Arc::new(f);
    let progress = cfg
        .progress
        .as_deref()
        .map(|name| ac_telemetry::progress::sweep(name, cells.len() as u64));

    let threads = if cfg.threads > 0 {
        cfg.threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }
    .min(cells.len().max(1));

    let mut reports: Vec<Option<CellReport<R>>> = (0..cells.len()).map(|_| None).collect();
    let slots: Vec<_> = reports.iter_mut().enumerate().collect();
    let queue = Mutex::new(slots.into_iter());
    let queue = &queue;
    let journal = &journal;
    let completed = &completed;
    let keys = &keys;
    let progress = &progress;

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let f = Arc::clone(&f);
            scope.spawn(move || loop {
                let item = { lock(queue).next() };
                let Some((i, slot)) = item else { break };
                let key = keys[i].clone();

                // Resume: trust the journal if its value still decodes.
                if let Some(v) = completed.get(&key) {
                    if let Ok(r) = serde_json::from_value::<R>(v.clone()) {
                        ac_telemetry::counter_add_labeled("cells_total", "resumed", 1);
                        if let Some(p) = progress {
                            p.cell_finished(
                                &key,
                                ac_telemetry::progress::CellStatus::Resumed,
                                Duration::ZERO,
                            );
                        }
                        *slot = Some(CellReport {
                            key,
                            attempts: 0,
                            outcome: CellOutcome::Resumed(r),
                        });
                        continue;
                    }
                }

                if let Some(p) = progress {
                    p.cell_start(&key);
                }
                let started = std::time::Instant::now();
                let report = supervise_cell(&key, &cells[i], cfg, &f);
                if let Some(p) = progress {
                    use ac_telemetry::progress::CellStatus;
                    p.cell_retried(report.attempts.saturating_sub(1));
                    let status = match &report.outcome {
                        CellOutcome::Done(_) | CellOutcome::Resumed(_) => CellStatus::Done,
                        CellOutcome::Failed(_) => CellStatus::Failed,
                        CellOutcome::TimedOut(_) => CellStatus::TimedOut,
                    };
                    p.cell_finished(&key, status, started.elapsed());
                }
                if !matches!(
                    report.outcome,
                    CellOutcome::Done(_) | CellOutcome::Resumed(_)
                ) {
                    // A failed or timed-out cell flushes artifacts
                    // immediately so the crash-current state survives
                    // even without the periodic flusher.
                    ac_telemetry::flush_now();
                }
                if let Some(j) = journal {
                    let entry = entry_of(&report);
                    if let Err(e) = lock(j).append(entry) {
                        ac_telemetry::warn!("could not checkpoint cell {key}: {e}");
                    }
                }
                *slot = Some(report);
            });
        }
    });
    if let Some(p) = progress {
        p.finish();
    }

    Ok(SweepReport {
        cells: reports
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.unwrap_or_else(|| CellReport {
                    key: keys[i].clone(),
                    attempts: 0,
                    outcome: CellOutcome::Failed(ExperimentError::Panic(
                        "supervisor never scheduled this cell".into(),
                    )),
                })
            })
            .collect(),
    })
}

/// Runs one cell's attempt loop, recording per-cell telemetry (a `cell`
/// span, wall-time histogram, outcome and retry counters).
fn supervise_cell<T, R, F>(key: &str, cell: &T, cfg: &SupervisorConfig, f: &Arc<F>) -> CellReport<R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> Result<R, ExperimentError> + Send + Sync + 'static,
{
    let _span = ac_telemetry::span("cell", || format!("cell {key}"));
    let started = std::time::Instant::now();
    let report = supervise_cell_attempts(key, cell, cfg, f);
    if ac_telemetry::enabled() {
        ac_telemetry::histogram_record(
            "cell_wall_time_us",
            started.elapsed().as_micros().min(u64::MAX as u128) as u64,
        );
        let status = match &report.outcome {
            CellOutcome::Done(_) | CellOutcome::Resumed(_) => "ok",
            CellOutcome::Failed(_) => "failed",
            CellOutcome::TimedOut(_) => "timed_out",
        };
        ac_telemetry::counter_add_labeled("cells_total", status, 1);
        if report.attempts > 1 {
            ac_telemetry::counter_add("cell_retries_total", u64::from(report.attempts - 1));
        }
    }
    report
}

/// The raw attempt loop on detached worker threads.
fn supervise_cell_attempts<T, R, F>(
    key: &str,
    cell: &T,
    cfg: &SupervisorConfig,
    f: &Arc<F>,
) -> CellReport<R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> Result<R, ExperimentError> + Send + Sync + 'static,
{
    let max_attempts = cfg.retries.saturating_add(1);
    let mut last_err = ExperimentError::Panic("cell never ran".into());
    for attempt in 1..=max_attempts {
        let (tx, rx) = mpsc::channel();
        let f = Arc::clone(f);
        let cell = cell.clone();
        let scope_key = key.to_string();
        // Detached on purpose: a wedged cell cannot be killed, only
        // abandoned — the supervisor stops waiting and moves on.
        std::thread::spawn(move || {
            // Label any timelines the cell records with its sweep key;
            // the scope is thread-local, so it must be set here on the
            // attempt thread, not on the supervisor thread.
            let _scope = ac_telemetry::timeline::run_scope(&scope_key);
            let out = panic::catch_unwind(AssertUnwindSafe(|| f(cell)))
                .unwrap_or_else(|p| Err(ExperimentError::Panic(panic_message(&*p))));
            let _ = tx.send(out);
        });
        let received = match cfg.deadline {
            Some(d) => rx.recv_timeout(d),
            None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
        };
        match received {
            Ok(Ok(r)) => {
                return CellReport {
                    key: key.to_string(),
                    attempts: attempt,
                    outcome: CellOutcome::Done(r),
                }
            }
            Ok(Err(e)) => last_err = e,
            Err(RecvTimeoutError::Disconnected) => {
                last_err = ExperimentError::Panic("worker vanished without a result".into())
            }
            Err(RecvTimeoutError::Timeout) => {
                let d = cfg.deadline.unwrap_or_default();
                if attempt == max_attempts {
                    return CellReport {
                        key: key.to_string(),
                        attempts: attempt,
                        outcome: CellOutcome::TimedOut(d),
                    };
                }
                last_err = ExperimentError::Timeout {
                    secs: d.as_secs_f64(),
                };
            }
        }
    }
    CellReport {
        key: key.to_string(),
        attempts: max_attempts,
        outcome: CellOutcome::Failed(last_err),
    }
}

/// The journal line describing a settled cell.
fn entry_of<R: Serialize>(report: &CellReport<R>) -> JournalEntry {
    let (status, value, error) = match &report.outcome {
        CellOutcome::Done(r) | CellOutcome::Resumed(r) => {
            (JournalStatus::Ok, serde_json::to_value(r).ok(), None)
        }
        CellOutcome::Failed(e) => (JournalStatus::Failed, None, Some(e.to_string())),
        CellOutcome::TimedOut(d) => (
            JournalStatus::TimedOut,
            None,
            Some(format!("exceeded {:.3}s deadline", d.as_secs_f64())),
        ),
    };
    JournalEntry {
        key: report.key.clone(),
        status,
        attempts: report.attempts,
        value,
        error,
    }
}

/// Locks a mutex, recovering from poisoning (we never hold a lock across
/// user code, so a poisoned guard's data is still consistent).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ac_resilience_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn sweep_isolates_panics() {
        let cells: Vec<u32> = (0..6).collect();
        let cfg = SupervisorConfig {
            retries: 0,
            ..Default::default()
        };
        let rep = run_sweep(
            &cells,
            &cfg,
            |c| format!("c{c}"),
            |c: u32| {
                if c == 3 {
                    panic!("injected panic in cell 3");
                }
                Ok(c * 10)
            },
        )
        .unwrap();
        assert_eq!(rep.done(), 5);
        assert_eq!(rep.failed(), 1);
        assert_eq!(rep.exit_code(), EXIT_PARTIAL);
        match &rep.cells[3].outcome {
            CellOutcome::Failed(ExperimentError::Panic(m)) => {
                assert!(m.contains("injected"), "{m}")
            }
            other => panic!("expected panic failure, got {other:?}"),
        }
        // Order is preserved for the survivors.
        assert_eq!(rep.cells[5].outcome.value(), Some(&50));
    }

    #[test]
    fn sweep_retries_once_then_succeeds() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static TRIES: AtomicU32 = AtomicU32::new(0);
        let cfg = SupervisorConfig {
            retries: 1,
            ..Default::default()
        };
        let rep = run_sweep(
            &[1u32],
            &cfg,
            |_| "flaky".into(),
            move |_| {
                if TRIES.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("first attempt fails");
                }
                Ok(7u32)
            },
        )
        .unwrap();
        assert_eq!(rep.done(), 1);
        assert_eq!(rep.cells[0].attempts, 2);
        assert_eq!(rep.exit_code(), EXIT_OK);
    }

    #[test]
    fn deadline_times_out_wedged_cell() {
        let cfg = SupervisorConfig {
            deadline: Some(Duration::from_millis(30)),
            retries: 0,
            ..Default::default()
        };
        let rep = run_sweep(
            &[0u32, 1],
            &cfg,
            |c| format!("c{c}"),
            |c: u32| {
                if c == 0 {
                    std::thread::sleep(Duration::from_millis(400));
                }
                Ok(c)
            },
        )
        .unwrap();
        assert_eq!(rep.timed_out(), 1);
        assert_eq!(rep.done(), 1);
        assert_eq!(rep.exit_code(), EXIT_PARTIAL);
    }

    #[test]
    fn journal_appends_atomically_and_resumes() {
        let dir = tmp_dir("journal");
        let path = journal_path(&dir, "figX");
        let cfg = SupervisorConfig {
            retries: 0,
            journal: Some(path.clone()),
            ..Default::default()
        };
        let cells: Vec<u32> = (0..4).collect();
        let rep = run_sweep(
            &cells,
            &cfg,
            |c| format!("c{c}"),
            |c: u32| {
                if c == 2 {
                    panic!("boom");
                }
                Ok(c + 100)
            },
        )
        .unwrap();
        assert_eq!(rep.failed(), 1);
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.entries().len(), 4);
        assert_eq!(j.completed().len(), 3);

        // Resume: only the failed cell is recomputed.
        let cfg = SupervisorConfig {
            resume: true,
            ..cfg
        };
        let rep2 = run_sweep(&cells, &cfg, |c| format!("c{c}"), |c: u32| Ok(c + 100)).unwrap();
        assert_eq!(rep2.resumed(), 3, "completed cells must be skipped");
        assert_eq!(rep2.done(), 1, "only the failed cell recomputes");
        assert_eq!(rep2.exit_code(), EXIT_OK);
        assert_eq!(rep2.values(), vec![&100, &101, &102, &103]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_tolerates_torn_tail() {
        let dir = tmp_dir("torn");
        let path = dir.join("t.journal.jsonl");
        let mut j = Journal::open(&path).unwrap();
        j.append(JournalEntry {
            key: "a".into(),
            status: JournalStatus::Ok,
            attempts: 1,
            value: Some(serde_json::json!(1)),
            error: None,
        })
        .unwrap();
        // Simulate a kill mid-write from a non-atomic appender.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"key\":\"b\",\"status\":\"ok\",\"att");
        std::fs::write(&path, text).unwrap();
        let j2 = Journal::open(&path).unwrap();
        assert_eq!(j2.entries().len(), 1, "torn line is skipped");
        assert!(j2.completed().contains_key("a"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_rerun_overrides_earlier_ok() {
        let dir = tmp_dir("override");
        let path = dir.join("o.journal.jsonl");
        let mut j = Journal::open(&path).unwrap();
        let ok = JournalEntry {
            key: "a".into(),
            status: JournalStatus::Ok,
            attempts: 1,
            value: Some(serde_json::json!(1)),
            error: None,
        };
        j.append(ok.clone()).unwrap();
        j.append(JournalEntry {
            status: JournalStatus::Failed,
            value: None,
            error: Some("x".into()),
            ..ok
        })
        .unwrap();
        assert!(
            j.completed().is_empty(),
            "later failure invalidates the value"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exit_codes_are_distinct() {
        assert_eq!(EXIT_OK, 0);
        assert_eq!(EXIT_PARTIAL, 2);
        assert_eq!(EXIT_INVALID_INPUT, 3);
    }

    #[test]
    fn error_display_names_cause() {
        let e = ExperimentError::InvalidInput("field `benchmark`".into());
        assert!(e.to_string().contains("benchmark"));
        let e = ExperimentError::Timeout { secs: 1.5 };
        assert!(e.to_string().contains("1.5"));
    }
}
