//! The shared experiment runner: (benchmark x L2 organisation) → metrics.

use crate::faultinject::{FaultSpec, FaultyCache};
use crate::resilience::ExperimentError;
use adaptive_cache::{
    AdaptiveCache, AdaptiveConfig, DipCache, DipConfig, MultiAdaptiveCache, MultiConfig, SbarCache,
    SbarConfig,
};
use cache_sim::{Cache, CacheModel, Geometry, PolicyKind};
use cpu_model::{run_functional, CpuConfig, FunctionalStats, Hierarchy, Pipeline, RunStats};
use serde::{Deserialize, Serialize};
use workloads::Benchmark;

/// The paper's L2 geometry: 512 KB, 64 B lines, 8-way.
pub const PAPER_L2: (usize, usize, usize) = (512 * 1024, 64, 8);

/// Seed used for every cache organisation, so that runs are reproducible
/// and policy comparisons share randomness.
const CACHE_SEED: u64 = 0x0C0FFEE;

/// Default instruction budget per (benchmark, configuration) run.
///
/// Overridable via the `AC_INSTS` environment variable; the paper uses
/// 100M-instruction SimPoints, which the synthetic workloads do not need —
/// their behaviour is stationary (or deliberately phased) by construction.
///
/// Parsed once per process: sweeps call this per cell, and the value
/// must not drift mid-sweep anyway. An unparsable value falls back to
/// 2M with a leveled warning instead of silently.
pub fn default_insts() -> u64 {
    static INSTS: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *INSTS.get_or_init(|| match std::env::var("AC_INSTS") {
        Ok(v) => v.trim().parse().unwrap_or_else(|_| {
            ac_telemetry::warn!("AC_INSTS={v:?} is not an instruction count; using 2000000");
            2_000_000
        }),
        Err(_) => 2_000_000,
    })
}

/// An L2 organisation under test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum L2Kind {
    /// Conventional single-policy cache.
    Plain(PolicyKind),
    /// The paper's two-policy adaptive cache.
    Adaptive(AdaptiveConfig),
    /// The SBAR-like set-sampling variant.
    Sbar(SbarConfig),
    /// Generalised N-policy adaptivity.
    Multi(MultiConfig),
    /// DIP set dueling (related-work comparison).
    Dip(DipConfig),
    /// Any other organisation wrapped in a deterministic fault injector
    /// (see [`crate::faultinject`]) — lets a sweep cell be made hostile
    /// from pure configuration, for testing the supervisor's
    /// degradation paths.
    Faulty {
        /// The fault plan.
        fault: FaultSpec,
        /// The wrapped organisation.
        inner: Box<L2Kind>,
    },
}

impl L2Kind {
    /// The three organisations of the paper's headline figures:
    /// Adaptive(LRU/LFU, full tags), LFU, LRU.
    pub fn headline_trio() -> [L2Kind; 3] {
        [
            L2Kind::Adaptive(AdaptiveConfig::paper_full_tags()),
            L2Kind::Plain(PolicyKind::LFU5),
            L2Kind::Plain(PolicyKind::Lru),
        ]
    }

    /// Builds the cache model for `geom`.
    pub fn build(&self, geom: Geometry) -> Box<dyn CacheModel> {
        match self {
            L2Kind::Plain(policy) => Box::new(Cache::new(geom, *policy, CACHE_SEED)),
            L2Kind::Adaptive(cfg) => Box::new(AdaptiveCache::new(geom, *cfg, CACHE_SEED)),
            L2Kind::Sbar(cfg) => Box::new(SbarCache::new(geom, *cfg, CACHE_SEED)),
            L2Kind::Multi(cfg) => Box::new(MultiAdaptiveCache::new(geom, cfg.clone(), CACHE_SEED)),
            L2Kind::Dip(cfg) => Box::new(DipCache::new(geom, *cfg, CACHE_SEED)),
            L2Kind::Faulty { fault, inner } => {
                Box::new(FaultyCache::new(inner.build(geom), *fault))
            }
        }
    }

    /// Short label for report columns.
    pub fn label(&self) -> String {
        match self {
            L2Kind::Plain(p) => p.to_string(),
            L2Kind::Adaptive(cfg) => format!(
                "Adaptive({}/{}, {:?})",
                cache_sim::ReplacementPolicy::name(&cfg.policy_a),
                cache_sim::ReplacementPolicy::name(&cfg.policy_b),
                cfg.shadow_tags
            ),
            L2Kind::Sbar(_) => "SBAR".to_string(),
            L2Kind::Multi(cfg) => format!("Adaptive(x{})", cfg.policies.len()),
            L2Kind::Dip(_) => "DIP".to_string(),
            L2Kind::Faulty { inner, .. } => format!("Faulty({})", inner.label()),
        }
    }
}

/// Result of one functional (miss-rate) run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MpkiResult {
    /// Benchmark name.
    pub benchmark: String,
    /// L2 label.
    pub l2: String,
    /// Functional statistics.
    pub stats: FunctionalStats,
}

/// Runs `bench` functionally (no timing) against an L2 of geometry
/// `(size, line, assoc)` and the given organisation.
///
/// Fails with [`ExperimentError::Geometry`] when the requested geometry is
/// impossible (non-power-of-two sets, zero ways, ...).
pub fn run_functional_l2(
    bench: &Benchmark,
    kind: &L2Kind,
    l2_geom: (usize, usize, usize),
    insts: u64,
) -> Result<MpkiResult, ExperimentError> {
    run_functional_l2_cfg(bench, kind, l2_geom, insts, &CpuConfig::paper_default())
}

/// [`run_functional_l2`] with an explicit CPU configuration (the L1
/// parameters key the replay cache; the rest is unused functionally).
///
/// Unless `AC_REPLAY=0`, the front-end runs at most once per
/// `(benchmark, L1 config, insts)` key process-wide: the first cell
/// captures the L2-visible reference stream, every cell (including the
/// first) replays it against its own L2 — see [`crate::replay_cache`].
pub fn run_functional_l2_cfg(
    bench: &Benchmark,
    kind: &L2Kind,
    l2_geom: (usize, usize, usize),
    insts: u64,
    config: &CpuConfig,
) -> Result<MpkiResult, ExperimentError> {
    let mut span = ac_telemetry::span("run", || {
        format!("functional {} x {}", bench.name, kind.label())
    });
    let geom = Geometry::new(l2_geom.0, l2_geom.1, l2_geom.2)?;
    let stats = if crate::replay_cache::replay_enabled() {
        let (trace, captured_here) = crate::replay_cache::get_or_capture(bench, config, insts);
        span.set_attr("frontend_skipped", || (!captured_here).to_string());
        let mut l2 = kind.build(geom);
        cpu_model::replay_l2(&trace, &mut l2)
    } else {
        span.set_attr("frontend_skipped", || "false".to_string());
        let l2 = kind.build(geom);
        let mut hierarchy = Hierarchy::new(config, l2);
        run_functional(&mut hierarchy, bench.spec.generator(), insts)
    };
    Ok(MpkiResult {
        benchmark: bench.name.to_string(),
        l2: kind.label(),
        stats,
    })
}

/// Runs `bench` through the full timing pipeline.
///
/// Fails with [`ExperimentError::Geometry`] when `config.l2` describes an
/// impossible geometry.
pub fn run_timed(
    bench: &Benchmark,
    kind: &L2Kind,
    config: CpuConfig,
    insts: u64,
) -> Result<RunStats, ExperimentError> {
    let geom = Geometry::new(
        config.l2.size_bytes,
        config.l2.line_bytes,
        config.l2.associativity,
    )?;
    Ok(run_timed_with_geom(bench, kind, config, geom, insts))
}

/// Runs `bench` through the timing pipeline with an explicit L2 geometry
/// (Figure 6's 9-way/10-way caches keep 1024 sets, so their geometry
/// cannot be derived from a total size).
pub fn run_timed_with_geom(
    bench: &Benchmark,
    kind: &L2Kind,
    config: CpuConfig,
    geom: Geometry,
    insts: u64,
) -> RunStats {
    let _span = ac_telemetry::span("run", || format!("timed {} x {}", bench.name, kind.label()));
    let l2 = kind.build(geom);
    let mut pipe = Pipeline::new(config, l2);
    pipe.run(bench.spec.generator(), insts)
}

/// Maps `f` over `items` on worker threads (order-preserving), catching
/// unwinds per item: one panicking item yields an
/// [`ExperimentError::Panic`] in its slot while every sibling still
/// completes.
pub fn try_parallel_map<T, R, F>(items: &[T], f: F) -> Vec<Result<R, ExperimentError>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    try_parallel_map_progress(items, None, |i, _| format!("item {i}"), f)
}

/// [`try_parallel_map`] with live progress reporting: when `handle` is
/// `Some`, every item is announced to the progress registry
/// ([`ac_telemetry::progress`]) as it starts and finishes, labelled by
/// `key_of(index, item)`, so a `--serve` introspection server can show
/// per-cell state and an ETA while the map runs.
pub fn try_parallel_map_progress<T, R, F>(
    items: &[T],
    handle: Option<&ac_telemetry::progress::SweepHandle>,
    key_of: impl Fn(usize, &T) -> String + Sync,
    f: F,
) -> Vec<Result<R, ExperimentError>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len().max(1));
    let f = &f;
    let key_of = &key_of;
    // Work-stealing claim counter: each worker claims the next unclaimed
    // index with one uncontended `fetch_add` instead of serialising on a
    // mutex-guarded queue. Results are accumulated per worker and merged
    // by index afterwards, so no slot needs shared mutable access.
    let next = AtomicUsize::new(0);
    let next = &next;
    let mut results: Vec<Option<Result<R, ExperimentError>>> =
        (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let key = handle.map(|h| {
                            let key = key_of(i, &items[i]);
                            h.cell_start(&key);
                            key
                        });
                        let started = std::time::Instant::now();
                        let out =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&items[i])));
                        if let (Some(h), Some(key)) = (handle, key) {
                            use ac_telemetry::progress::CellStatus;
                            let status = if out.is_ok() {
                                CellStatus::Done
                            } else {
                                CellStatus::Failed
                            };
                            h.cell_finished(&key, status, started.elapsed());
                        }
                        local.push((
                            i,
                            out.map_err(|p| {
                                ExperimentError::Panic(crate::resilience::panic_message(&*p))
                            }),
                        ));
                    }
                    local
                })
            })
            .collect();
        for w in workers {
            // Worker closures catch item panics, so join only fails on
            // runtime-level faults; surface those rather than aborting.
            if let Ok(local) = w.join() {
                for (i, r) in local {
                    results[i] = Some(r);
                }
            }
        }
    });
    results
        .into_iter()
        .map(|r| {
            r.unwrap_or_else(|| {
                Err(ExperimentError::Panic(
                    "worker exited without producing a result".into(),
                ))
            })
        })
        .collect()
}

/// Maps `f` over `items` on worker threads (order-preserving).
///
/// # Panics
///
/// Propagates item failures as a single panic *after* every item has run
/// (sibling items are never cancelled). Sweeps that must survive
/// individual cell failures should use [`try_parallel_map`] or the
/// supervisor in [`crate::resilience`].
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    let mut failures = Vec::new();
    for (i, r) in try_parallel_map(items, f).into_iter().enumerate() {
        match r {
            Ok(v) => out.push(v),
            Err(e) => failures.push(format!("item {i}: {e}")),
        }
    }
    if !failures.is_empty() {
        panic!(
            "parallel_map: {} of {} items failed: {}",
            failures.len(),
            items.len(),
            failures.join("; ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::primary_suite;

    #[test]
    fn functional_run_produces_misses() {
        let b = &primary_suite()[1]; // applu: guaranteed L2-hostile scan
        let r = run_functional_l2(b, &L2Kind::Plain(PolicyKind::Lru), PAPER_L2, 100_000).unwrap();
        assert!(
            r.stats.l2_mpki() > 1.0,
            "applu must exceed 1 MPKI, got {}",
            r.stats.l2_mpki()
        );
    }

    #[test]
    fn timed_run_produces_cpi() {
        let b = &primary_suite()[1];
        let s = run_timed(
            b,
            &L2Kind::Plain(PolicyKind::Lru),
            CpuConfig::paper_default(),
            50_000,
        )
        .unwrap();
        assert!(s.cpi() > 0.2, "cpi = {}", s.cpi());
    }

    #[test]
    fn adaptive_l2_builds_and_runs() {
        let b = &primary_suite()[2]; // art-1
        let r = run_functional_l2(
            b,
            &L2Kind::Adaptive(AdaptiveConfig::paper_default()),
            PAPER_L2,
            100_000,
        )
        .unwrap();
        assert!(r.stats.l2_misses > 0);
        assert!(r.l2.contains("Adaptive"));
    }

    #[test]
    fn bad_geometry_is_a_typed_error() {
        let b = &primary_suite()[0];
        let err = run_functional_l2(b, &L2Kind::Plain(PolicyKind::Lru), (1000, 64, 7), 1_000)
            .unwrap_err();
        assert!(matches!(err, ExperimentError::Geometry(_)), "{err}");
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..50).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn try_parallel_map_isolates_panics() {
        let items: Vec<u64> = (0..32).collect();
        let out = try_parallel_map(&items, |&x| {
            if x == 7 {
                panic!("injected: item 7");
            }
            x + 1
        });
        assert_eq!(out.len(), 32);
        for (i, r) in out.iter().enumerate() {
            if i == 7 {
                assert!(matches!(r, Err(ExperimentError::Panic(m)) if m.contains("item 7")));
            } else {
                assert_eq!(
                    r.as_ref().unwrap(),
                    &(i as u64 + 1),
                    "sibling {i} must complete"
                );
            }
        }
    }

    #[test]
    fn parallel_map_panic_reports_failed_items() {
        let items: Vec<u64> = (0..8).collect();
        let err = std::panic::catch_unwind(|| {
            parallel_map(&items, |&x| {
                if x == 2 {
                    panic!("kaboom");
                }
                x
            })
        })
        .unwrap_err();
        let msg = crate::resilience::panic_message(&*err);
        assert!(msg.contains("1 of 8"), "{msg}");
        assert!(msg.contains("kaboom"), "{msg}");
    }

    #[test]
    fn faulty_l2_kind_builds_and_labels() {
        let kind = L2Kind::Faulty {
            fault: FaultSpec::flip_tags(0x1, 10),
            inner: Box::new(L2Kind::Plain(PolicyKind::Lru)),
        };
        assert_eq!(kind.label(), "Faulty(LRU)");
        let b = &primary_suite()[0];
        let r = run_functional_l2(b, &kind, PAPER_L2, 20_000).unwrap();
        assert!(r.l2.contains("Faulty"));
        // Serialisable like every other organisation.
        let json = serde_json::to_string(&kind).unwrap();
        let back: L2Kind = serde_json::from_str(&json).unwrap();
        assert_eq!(back, kind);
    }

    #[test]
    fn headline_trio_labels() {
        let trio = L2Kind::headline_trio();
        assert!(trio[0].label().contains("Adaptive"));
        assert_eq!(trio[1].label(), "LFU");
        assert_eq!(trio[2].label(), "LRU");
    }
}
