//! Ablation studies of the adaptive cache's design choices.
//!
//! The paper fixes several knobs (bit-vector history with `m` equal to
//! the associativity, 5-bit LFU counters, 16-ish leader sets for SBAR)
//! with brief justification; these sweeps quantify how much each choice
//! matters on the primary suite.

use crate::report::Table;
use crate::runner::{parallel_map, run_functional_l2, L2Kind, PAPER_L2};
use adaptive_cache::overhead::StorageModel;
use adaptive_cache::{AdaptiveConfig, HistoryKind, SbarConfig};
use cache_sim::{Geometry, PolicyKind};
use workloads::primary_suite;

fn average_mpki(kind: &L2Kind, insts: u64) -> f64 {
    let suite = primary_suite();
    let v = parallel_map(&suite, |b| {
        run_functional_l2(b, kind, PAPER_L2, insts)
            .expect("paper geometry is valid")
            .stats
            .l2_mpki()
    });
    v.iter().sum::<f64>() / v.len() as f64
}

/// Sweep of the miss-history variant (paper Section 2.2 discusses three
/// realisations but evaluates only the bit-vector with `m = 8`).
pub fn history_ablation(insts: u64) -> Table {
    let variants: Vec<(String, HistoryKind)> = [4u32, 8, 16, 32, 64]
        .iter()
        .map(|&m| (format!("bit-vector m={m}"), HistoryKind::BitVector { m }))
        .chain([
            ("counters (theory)".to_string(), HistoryKind::Counters),
            (
                "saturating 4-bit".to_string(),
                HistoryKind::Saturating { bits: 4 },
            ),
            (
                "saturating 10-bit".to_string(),
                HistoryKind::Saturating { bits: 10 },
            ),
        ])
        .collect();
    let mut t = Table::new(
        "Ablation: miss-history buffer variant (primary-set average MPKI)",
        "history",
        vec!["avg MPKI".into(), "bits/set".into()],
    );
    for (label, kind) in variants {
        let cfg = AdaptiveConfig::paper_full_tags().history_kind(kind);
        t.push_row(
            label,
            vec![
                average_mpki(&L2Kind::Adaptive(cfg), insts),
                f64::from(kind.bits_per_set()),
            ],
        );
    }
    t
}

/// Sweep of the LFU counter width (the paper uses 5 bits; too few bits
/// saturate early and lose discrimination, too many embalm stale blocks).
pub fn lfu_counter_ablation(insts: u64) -> Table {
    let mut t = Table::new(
        "Ablation: LFU counter width (primary-set average MPKI)",
        "counter bits",
        vec!["plain LFU".into(), "adaptive LRU/LFU".into()],
    );
    for bits in [2u32, 3, 5, 8, 12] {
        let lfu = PolicyKind::Lfu { counter_bits: bits };
        let mut cfg = AdaptiveConfig::paper_full_tags();
        cfg.policy_b = lfu;
        t.push_row(
            bits.to_string(),
            vec![
                average_mpki(&L2Kind::Plain(lfu), insts),
                average_mpki(&L2Kind::Adaptive(cfg), insts),
            ],
        );
    }
    t
}

/// Sweep of the SBAR leader-set count: fewer leaders = less overhead but
/// noisier sampling.
pub fn sbar_leader_ablation(insts: u64) -> Table {
    let geom = Geometry::new(512 * 1024, 64, 8).unwrap();
    let model = StorageModel::new(geom);
    let mut t = Table::new(
        "Ablation: SBAR leader-set count (primary-set average MPKI)",
        "leader sets",
        vec!["avg MPKI".into(), "overhead %".into()],
    );
    for leaders in [2usize, 4, 8, 16, 32, 64, 128] {
        let cfg = SbarConfig {
            leader_sets: leaders,
            ..SbarConfig::paper_default()
        };
        t.push_row(
            leaders.to_string(),
            vec![
                average_mpki(&L2Kind::Sbar(cfg), insts),
                model.sbar_overhead_pct(&cfg),
            ],
        );
    }
    t
}

/// Sweep of the XOR-folded partial tags against low-order-bit tags of the
/// same width (Section 3.1 mentions both).
pub fn xor_tag_ablation(insts: u64) -> Table {
    use cache_sim::TagMode;
    let mut t = Table::new(
        "Ablation: low-order vs XOR-folded partial tags (primary-set average MPKI)",
        "tag bits",
        vec!["low-order".into(), "XOR-folded".into()],
    );
    for bits in [4u32, 6, 8] {
        let low = AdaptiveConfig::paper_full_tags()
            .shadow_tag_mode(TagMode::PartialLow { bits });
        let xor = AdaptiveConfig::paper_full_tags()
            .shadow_tag_mode(TagMode::PartialXor { bits });
        t.push_row(
            bits.to_string(),
            vec![
                average_mpki(&L2Kind::Adaptive(low), insts),
                average_mpki(&L2Kind::Adaptive(xor), insts),
            ],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn history_variants_are_all_sane() {
        let t = history_ablation(250_000);
        let values: Vec<f64> = t.rows.iter().map(|(_, v)| v[0]).collect();
        let (min, max) = values
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        // No history variant should be catastrophically worse than another.
        assert!(max / min < 1.2, "history sweep spread too wide: {values:?}");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn sbar_more_leaders_cost_more() {
        let t = sbar_leader_ablation(150_000);
        let overheads: Vec<f64> = t.rows.iter().map(|(_, v)| v[1]).collect();
        for w in overheads.windows(2) {
            assert!(w[0] < w[1], "overhead must grow with leaders: {overheads:?}");
        }
    }
}
