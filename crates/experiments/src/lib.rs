//! # experiments — regenerating the paper's evaluation
//!
//! One module per table/figure of the paper's Section 4, all built on a
//! shared [`runner`]: a benchmark (from [`workloads`]) is driven through
//! the memory hierarchy with a chosen L2 organisation ([`L2Kind`]), either
//! *functionally* (miss rates only — Figures 3, 5, 8 and the extended-set
//! stability numbers) or through the full timing pipeline (CPI — Figures
//! 4, 6, 9, 10).
//!
//! Every experiment returns [`report::Table`]s that print in the same
//! layout the paper reports, and can be serialised to CSV/JSON artefacts
//! under `results/`.
//!
//! The figure regeneration binaries live in the `bench` crate
//! (`cargo run --release -p bench --bin fig03_mpki`, ...).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod figures;
pub mod multicore;
pub mod report;
pub mod runner;

pub use report::Table;
pub use runner::{default_insts, run_functional_l2, run_timed, L2Kind, PAPER_L2};
