//! # experiments — regenerating the paper's evaluation
//!
//! One module per table/figure of the paper's Section 4, all built on a
//! shared [`runner`]: a benchmark (from [`workloads`]) is driven through
//! the memory hierarchy with a chosen L2 organisation ([`L2Kind`]), either
//! *functionally* (miss rates only — Figures 3, 5, 8 and the extended-set
//! stability numbers) or through the full timing pipeline (CPI — Figures
//! 4, 6, 9, 10).
//!
//! Every experiment returns [`report::Table`]s that print in the same
//! layout the paper reports, and can be serialised to CSV/JSON artefacts
//! under `results/`.
//!
//! Long sweeps run under the [`resilience`] supervisor: panics are
//! isolated per cell, wedged cells time out, and completed cells are
//! checkpointed to a journal so an interrupted sweep restarted with
//! `AC_RESUME=1` skips finished work. The [`faultinject`] module provides
//! deterministic fault wrappers for testing those degradation paths.
//!
//! The figure regeneration binaries live in the `bench` crate
//! (`cargo run --release -p bench --bin fig03_mpki`, ...).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod faultinject;
pub mod figures;
pub mod multicore;
pub mod replay_cache;
pub mod replay_store;
pub mod report;
pub mod resilience;
pub mod runner;

pub use faultinject::{FaultSpec, FaultyCache, FaultyRead};
pub use report::Table;
pub use resilience::{
    run_sweep, CellOutcome, ExperimentError, SupervisorConfig, SweepReport, EXIT_INVALID_INPUT,
    EXIT_OK, EXIT_PARTIAL,
};
pub use runner::{
    default_insts, run_functional_l2, run_functional_l2_cfg, run_timed, try_parallel_map,
    try_parallel_map_progress, L2Kind, PAPER_L2,
};
