//! Tabular reporting: aligned text for the terminal, CSV and JSON
//! artefacts for `results/`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::io;
use std::path::Path;

/// A simple numeric table: one label per row, one series per column —
/// the shape of every figure in the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. `"Figure 3: L2 MPKI"`).
    pub title: String,
    /// Label of the row-key column (e.g. `"benchmark"`).
    pub row_key: String,
    /// Column (series) names.
    pub columns: Vec<String>,
    /// Rows: `(label, one value per column)`.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        title: impl Into<String>,
        row_key: impl Into<String>,
        columns: Vec<String>,
    ) -> Self {
        Table {
            title: title.into(),
            row_key: row_key.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match column count"
        );
        self.rows.push((label.into(), values));
    }

    /// Appends a row of per-column arithmetic means over the existing rows
    /// (the paper reports arithmetic means of MPKI/CPI so that the average
    /// is proportional to total cost — see its footnote 7).
    pub fn push_average(&mut self) {
        if self.rows.is_empty() {
            return;
        }
        let n = self.rows.len() as f64;
        let means: Vec<f64> = (0..self.columns.len())
            .map(|c| self.rows.iter().map(|(_, v)| v[c]).sum::<f64>() / n)
            .collect();
        self.rows.push(("Average".to_string(), means));
    }

    /// The values of the row labelled `label`, if present.
    pub fn row(&self, label: &str) -> Option<&[f64]> {
        self.rows
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, v)| v.as_slice())
    }

    /// The column index of `name`, if present.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.row_key);
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(label);
            for v in values {
                out.push(',');
                out.push_str(&format!("{v:.6}"));
            }
            out.push('\n');
        }
        out
    }

    /// Writes the table as both `<stem>.csv` and `<stem>.json` under
    /// `dir`, creating the directory if needed.
    ///
    /// Both files are written atomically (to `<name>.tmp`, then renamed),
    /// so an interrupted run can never leave a truncated artifact that a
    /// resumed run would trust.
    pub fn write_artifacts(&self, dir: &Path, stem: &str) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let json = serde_json::to_string_pretty(self).map_err(io::Error::other)?;
        write_atomic(&dir.join(format!("{stem}.csv")), self.to_csv().as_bytes())?;
        write_atomic(&dir.join(format!("{stem}.json")), json.as_bytes())?;
        Ok(())
    }
}

/// Writes `bytes` to `path` atomically: the contents land in
/// `<path>.tmp` first and are renamed into place, so readers (and
/// resumed runs) only ever observe either the old file or the complete
/// new one — never a truncated intermediate.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain([self.row_key.len()])
            .max()
            .unwrap_or(8)
            .max(8);
        let col_w = self
            .columns
            .iter()
            .map(|c| c.len())
            .max()
            .unwrap_or(10)
            .max(10);
        write!(f, "{:label_w$}", self.row_key)?;
        for c in &self.columns {
            write!(f, "  {c:>col_w$}")?;
        }
        writeln!(f)?;
        writeln!(f, "{}", "-".repeat(label_w + (col_w + 2) * self.columns.len()))?;
        for (label, values) in &self.rows {
            write!(f, "{label:label_w$}")?;
            for v in values {
                write!(f, "  {v:>col_w$.3}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Fig X", "bench", vec!["LRU".into(), "LFU".into()]);
        t.push_row("art", vec![10.0, 4.0]);
        t.push_row("lucas", vec![2.0, 8.0]);
        t
    }

    #[test]
    fn average_row() {
        let mut t = sample();
        t.push_average();
        assert_eq!(t.row("Average").unwrap(), &[6.0, 6.0]);
    }

    #[test]
    fn lookup_by_name() {
        let t = sample();
        assert_eq!(t.row("art").unwrap(), &[10.0, 4.0]);
        assert_eq!(t.column("LFU"), Some(1));
        assert_eq!(t.column("nope"), None);
        assert!(t.row("nope").is_none());
    }

    #[test]
    fn csv_shape() {
        let csv = sample().to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "bench,LRU,LFU");
        assert!(lines[1].starts_with("art,10.0"));
    }

    #[test]
    fn display_contains_everything() {
        let text = sample().to_string();
        for needle in ["Fig X", "LRU", "LFU", "art", "lucas"] {
            assert!(text.contains(needle), "missing {needle} in\n{text}");
        }
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = sample();
        t.push_row("bad", vec![1.0]);
    }

    #[test]
    fn artifacts_round_trip() {
        let dir = std::env::temp_dir().join("ac_report_test");
        let t = sample();
        t.write_artifacts(&dir, "fig_x").unwrap();
        let json = std::fs::read_to_string(dir.join("fig_x.json")).unwrap();
        let back: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn artifacts_leave_no_temp_files() {
        let dir = std::env::temp_dir().join("ac_report_atomic_test");
        let _ = std::fs::remove_dir_all(&dir);
        sample().write_artifacts(&dir, "fig_y").unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            names.iter().all(|n| !n.ends_with(".tmp")),
            "temp files must be renamed away: {names:?}"
        );
        assert_eq!(names.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_replaces_existing_content() {
        let dir = std::env::temp_dir().join("ac_write_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.json");
        write_atomic(&path, b"old").unwrap();
        write_atomic(&path, b"new content").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "new content");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
