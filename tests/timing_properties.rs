//! Property-based tests of the timing model: physical sanity constraints
//! that must hold for every workload and configuration.

use cpu_model::{CpuConfig, Pipeline};
use proptest::prelude::*;
use workloads::primary_suite;

fn config_variants() -> impl Strategy<Value = CpuConfig> {
    (1u32..=4, prop_oneof![Just(60u32), Just(120), Just(300)], 1u32..=64).prop_map(
        |(mshr_pow, mem_latency, sb)| {
            let mut c = CpuConfig::paper_default().store_buffer(sb);
            c.mshrs = 1 << mshr_pow;
            c.mem_latency = mem_latency;
            c
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// CPI can never beat the machine width, and cycle counts are
    /// monotone in the instruction count.
    #[test]
    fn cpi_is_physical(which in 0usize..26, config in config_variants()) {
        let b = &primary_suite()[which];
        let mut pipe = Pipeline::with_lru_l2(config);
        let short = pipe.run(b.spec.generator(), 10_000);
        prop_assert!(short.cpi() >= 1.0 / f64::from(config.width) - 1e-9);

        let mut pipe2 = Pipeline::with_lru_l2(config);
        let long = pipe2.run(b.spec.generator(), 20_000);
        prop_assert!(long.cycles >= short.cycles, "more work cannot take fewer cycles");
    }

    /// Raising the memory latency never lowers the cycle count.
    #[test]
    fn memory_latency_is_monotone(which in 0usize..26) {
        let b = &primary_suite()[which];
        let mut fast_cfg = CpuConfig::paper_default();
        fast_cfg.mem_latency = 60;
        let mut slow_cfg = CpuConfig::paper_default();
        slow_cfg.mem_latency = 400;
        let fast = Pipeline::with_lru_l2(fast_cfg).run(b.spec.generator(), 15_000);
        let slow = Pipeline::with_lru_l2(slow_cfg).run(b.spec.generator(), 15_000);
        prop_assert!(
            slow.cycles >= fast.cycles,
            "{}: slow memory {} < fast memory {}",
            b.name, slow.cycles, fast.cycles
        );
    }

    /// Widening every window (MSHRs, store buffer) never hurts.
    #[test]
    fn more_resources_never_hurt(which in 0usize..26) {
        let b = &primary_suite()[which];
        let mut small_cfg = CpuConfig::paper_default().store_buffer(1).writeback_buffer(1);
        small_cfg.mshrs = 1;
        let mut big_cfg = CpuConfig::paper_default().store_buffer(128).writeback_buffer(64);
        big_cfg.mshrs = 32;
        let small = Pipeline::with_lru_l2(small_cfg).run(b.spec.generator(), 15_000);
        let big = Pipeline::with_lru_l2(big_cfg).run(b.spec.generator(), 15_000);
        prop_assert!(
            big.cycles <= small.cycles,
            "{}: bigger machine slower ({} vs {})",
            b.name, big.cycles, small.cycles
        );
    }

    /// The memory system never serves an instruction stream with zero
    /// cycles, and stats stay internally consistent.
    #[test]
    fn run_stats_consistency(which in 0usize..26, n in 1_000u64..20_000) {
        let b = &primary_suite()[which];
        let mut pipe = Pipeline::with_lru_l2(CpuConfig::paper_default());
        let s = pipe.run(b.spec.generator(), n);
        prop_assert_eq!(s.instructions, n);
        prop_assert!(s.cycles > 0);
        prop_assert_eq!(s.l2.hits + s.l2.misses, s.l2.accesses);
        prop_assert_eq!(s.l1d.hits + s.l1d.misses, s.l1d.accesses);
        prop_assert!(s.branches.mispredictions <= s.branches.predictions);
    }
}
