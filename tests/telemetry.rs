//! End-to-end telemetry integration: install the global hub once, drive
//! real cache organisations through it, and check the recorded decision
//! events against the caches' own counters.
//!
//! The global recorder is install-once per process, so everything that
//! depends on the global hub lives in ONE `#[test]` function — Rust runs
//! each integration-test binary in its own process, but tests within a
//! binary share it.

use ac_telemetry::{DecisionEvent, EvictionCase, Telemetry, TelemetryConfig};
use adaptive_cache::{AdaptiveCache, AdaptiveConfig, SbarCache, SbarConfig};
use cache_sim::{BlockAddr, CacheModel, Geometry};

/// An LFU-friendly hot/scan mix that forces real replacements (same
/// shape as the unit tests in `adaptive.rs`).
fn hot_scan_block(i: u64) -> BlockAddr {
    let group = i / 4;
    if i % 4 < 3 {
        BlockAddr::new(group % 768)
    } else {
        BlockAddr::new(768 + group % 8192)
    }
}

#[test]
fn decision_stream_matches_internal_counters() {
    // Sample rate 1 (record everything), ring large enough that no event
    // from the workloads below is overwritten.
    let cfg = TelemetryConfig {
        ring_capacity: 1 << 21,
        ..TelemetryConfig::default()
    };
    let hub = Telemetry::install(cfg).expect("this test binary must be the only global installer");
    assert!(ac_telemetry::enabled());
    assert!(ac_telemetry::events_enabled());

    // --- AdaptiveCache: every imitation decision must appear in the
    // event stream, split by component exactly like the Figure-7
    // sampling counters.
    let geom = Geometry::new(64 * 1024, 64, 8).unwrap();
    let mut cache = AdaptiveCache::new(geom, AdaptiveConfig::paper_full_tags(), 7);
    for i in 0..200_000u64 {
        cache.access(hot_scan_block(i), false);
    }

    let (total_a, total_b) = cache.imitation_totals();
    assert!(total_a + total_b > 0, "workload must force replacements");

    let events = hub.events();
    let mut seen_a = 0u64;
    let mut seen_b = 0u64;
    let mut history_updates = 0u64;
    for rec in &events {
        match rec.event {
            DecisionEvent::Imitation {
                component, case, ..
            } => {
                match component {
                    ac_telemetry::Comp::A => seen_a += 1,
                    ac_telemetry::Comp::B => seen_b += 1,
                }
                assert_ne!(
                    case,
                    EvictionCase::AliasFallback,
                    "full tags can never alias"
                );
            }
            DecisionEvent::HistoryUpdate {
                a_missed, b_missed, ..
            } => {
                assert_ne!(a_missed, b_missed, "only exclusive misses train");
                history_updates += 1;
            }
            _ => {}
        }
    }
    assert_eq!(
        (seen_a, seen_b),
        (total_a, total_b),
        "recorded imitation events must match AdaptiveCache's counters exactly"
    );
    assert!(history_updates > 0, "exclusive misses must be streamed");
    assert_eq!(
        hub.events_seen(),
        hub.events_recorded(),
        "sample rate 1 records everything"
    );

    // --- SBAR: leader votes carry the selector state; follower
    // replacements are tagged with the follower case.
    let mut sbar = SbarCache::new(geom, SbarConfig::paper_default(), 7);
    let before = hub.events().len();
    for i in 0..200_000u64 {
        sbar.access(hot_scan_block(i), false);
    }
    let sbar_events: Vec<_> = hub.events().into_iter().skip(before).collect();
    let leader_votes = sbar_events
        .iter()
        .filter(|r| matches!(r.event, DecisionEvent::LeaderVote { .. }))
        .count();
    let follower_evictions = sbar_events
        .iter()
        .filter(|r| {
            matches!(
                r.event,
                DecisionEvent::Imitation {
                    case: EvictionCase::Follower,
                    ..
                }
            )
        })
        .count();
    assert!(leader_votes > 0, "leader sets must vote on this mix");
    assert!(follower_evictions > 0, "follower sets must replace");
    for rec in &sbar_events {
        if let DecisionEvent::LeaderVote { set, psel, .. } = rec.event {
            assert!(sbar.is_leader(set as usize), "votes come from leaders");
            assert!(psel < 1 << 10, "psel stays inside its 10-bit range");
        }
    }

    // --- Cache stats flush: the telemetry counters mirror CacheStats.
    cache.flush_telemetry();
    let label = cache.label();
    assert_eq!(
        hub.counter_value("cache_misses_total", &label),
        cache.stats().misses
    );
    assert_eq!(
        hub.counter_value("cache_accesses_total", &label),
        cache.stats().accesses
    );

    // --- Spans recorded through the global API show up in the hub.
    {
        let _span = ac_telemetry::span("test", || "integration_span".to_string());
        std::hint::black_box(());
    }
    assert!(hub
        .span_totals()
        .iter()
        .any(|(name, cat, count, _)| name == "integration_span" && *cat == "test" && *count == 1));

    // --- Exports stay consistent with what was recorded.
    let prom = hub.prometheus();
    assert!(prom.contains("ac_cache_misses_total"));
    let summary = hub.summary_json();
    assert!(summary.contains("\"events\""));
}

/// Sampling rate 0 must suppress the stream entirely — checked on a
/// local (non-global) hub so it composes with the test above.
#[test]
fn sample_rate_zero_emits_nothing_through_recorder() {
    let hub = Telemetry::new(TelemetryConfig::default().with_sample_rate(0));
    use ac_telemetry::Recorder;
    for i in 0..1000 {
        hub.decision(DecisionEvent::Imitation {
            set: i,
            component: ac_telemetry::Comp::A,
            case: EvictionCase::SameVictim,
        });
    }
    assert_eq!(hub.events().len(), 0);
    assert_eq!(hub.events_recorded(), 0);
    assert!(!hub.events_enabled());
}
