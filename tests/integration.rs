//! Cross-crate integration tests: full benchmark → hierarchy → pipeline
//! stacks, determinism, and the headline adaptivity behaviours.

use adaptive_caches::prelude::*;
use adaptive_cache::{SbarCache, SbarConfig};
use cache_sim::Cache;
use cpu_model::{run_functional, Hierarchy};
use experiments::{run_functional_l2, run_timed, L2Kind, PAPER_L2};
use workloads::{extended_suite, primary_suite};

fn paper_geom() -> Geometry {
    Geometry::new(512 * 1024, 64, 8).unwrap()
}

#[test]
fn every_extended_benchmark_runs_through_the_hierarchy() {
    for b in extended_suite() {
        let mut h = Hierarchy::new(
            &CpuConfig::paper_default(),
            Cache::new(paper_geom(), PolicyKind::Lru, 1),
        );
        let s = run_functional(&mut h, b.spec.generator(), 5_000);
        assert_eq!(s.instructions, 5_000, "{}", b.name);
        assert!(s.data_accesses > 0, "{} produced no memory traffic", b.name);
    }
}

#[test]
fn timed_and_functional_agree_on_the_reference_stream() {
    // The timed pipeline and the functional driver must expose the same
    // L2 demand stream (timing must not change what is simulated).
    let b = &primary_suite()[1]; // applu
    let functional =
        run_functional_l2(b, &L2Kind::Plain(PolicyKind::Lru), PAPER_L2, 40_000).unwrap();
    let timed = run_timed(
        b,
        &L2Kind::Plain(PolicyKind::Lru),
        CpuConfig::paper_default(),
        40_000,
    )
    .unwrap();
    assert_eq!(
        functional.stats.l2_misses, timed.l2.misses,
        "functional and timed L2 misses diverge"
    );
    assert_eq!(functional.stats.l1d_misses, timed.l1d.misses);
}

#[test]
fn runs_are_deterministic_end_to_end() {
    let b = &primary_suite()[4];
    let kind = L2Kind::Adaptive(AdaptiveConfig::paper_default());
    let s1 = run_timed(b, &kind, CpuConfig::paper_default(), 60_000).unwrap();
    let s2 = run_timed(b, &kind, CpuConfig::paper_default(), 60_000).unwrap();
    assert_eq!(s1, s2, "identical configs must give identical results");
}

#[test]
fn adaptive_never_explodes_relative_to_lru() {
    // The stability claim at small scale: on every primary benchmark the
    // adaptive cache's misses stay within a small factor of LRU's.
    let adaptive = L2Kind::Adaptive(AdaptiveConfig::paper_full_tags());
    let lru = L2Kind::Plain(PolicyKind::Lru);
    for b in primary_suite() {
        let a = run_functional_l2(&b, &adaptive, PAPER_L2, 150_000)
            .unwrap()
            .stats
            .l2_misses;
        let l = run_functional_l2(&b, &lru, PAPER_L2, 150_000)
            .unwrap()
            .stats
            .l2_misses;
        assert!(
            (a as f64) < (l as f64) * 1.25 + 2000.0,
            "{}: adaptive {a} vs LRU {l}",
            b.name
        );
    }
}

#[test]
fn adaptive_equals_component_when_both_components_match() {
    // Degenerate configuration: adapting between LRU and LRU must behave
    // exactly like a plain LRU cache (Algorithm 1 always finds the
    // component victim in the real cache).
    let geom = Geometry::new(16 * 1024, 64, 4).unwrap();
    let cfg = AdaptiveConfig::with_policies(PolicyKind::Lru, PolicyKind::Lru);
    let mut adaptive = AdaptiveCache::new(geom, cfg, 5);
    let mut plain = Cache::new(geom, PolicyKind::Lru, 5);
    let mut x = 77u64;
    for _ in 0..100_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let block = cache_sim::BlockAddr::new(x % 1500);
        let a = adaptive.access(block, false);
        let p = plain.access(block, false);
        assert_eq!(a.hit, p.hit, "divergence at access");
    }
    assert_eq!(adaptive.stats().misses, plain.stats().misses);
}

#[test]
fn sbar_and_adaptive_agree_on_direction() {
    // On a strongly LFU-friendly stream both organisations must beat LRU.
    let b = primary_suite()
        .into_iter()
        .find(|b| b.name == "art-1")
        .unwrap();
    let insts = 1_500_000; // several rescan repetitions
    let lru = run_functional_l2(&b, &L2Kind::Plain(PolicyKind::Lru), PAPER_L2, insts)
        .unwrap()
        .stats
        .l2_misses;
    let adaptive = run_functional_l2(
        &b,
        &L2Kind::Adaptive(AdaptiveConfig::paper_full_tags()),
        PAPER_L2,
        insts,
    )
    .unwrap()
    .stats
    .l2_misses;
    let sbar = run_functional_l2(
        &b,
        &L2Kind::Sbar(SbarConfig::paper_default()),
        PAPER_L2,
        insts,
    )
    .unwrap()
    .stats
    .l2_misses;
    assert!(adaptive < lru, "adaptive {adaptive} vs lru {lru}");
    assert!(sbar < lru, "sbar {sbar} vs lru {lru}");
}

#[test]
fn sbar_followers_switch_policies_live() {
    // Drive an SBAR cache through alternating phases and confirm the
    // global selector actually flips (the follower sets then apply the
    // winning policy to their current contents).
    let geom = Geometry::new(64 * 1024, 64, 8).unwrap();
    let mut cache = SbarCache::new(geom, SbarConfig::paper_default(), 3);
    for i in 0..400_000u64 {
        let group = i / 4;
        let block = if (i / 100_000) % 2 == 0 {
            // LFU-friendly rescan mix
            if i % 4 < 3 {
                group % 768
            } else {
                768 + group % 8192
            }
        } else {
            // LRU-friendly shifting window
            10_000 + (i / 5_000) * 192 + (i * 7919) % 192
        };
        cache.access(cache_sim::BlockAddr::new(block), false);
    }
    assert!(
        cache.policy_switches() >= 1,
        "selector never flipped across phases"
    );
}

#[test]
fn pipeline_cpi_orders_follow_memory_boundedness() {
    // mcf (pointer chase) must be far more memory-bound than parser
    // (temporal reuse) under identical configuration.
    let suite = primary_suite();
    let mcf = suite.iter().find(|b| b.name == "mcf").unwrap();
    let parser = suite.iter().find(|b| b.name == "parser").unwrap();
    let kind = L2Kind::Plain(PolicyKind::Lru);
    let cfg = CpuConfig::paper_default();
    let c_mcf = run_timed(mcf, &kind, cfg, 100_000).unwrap().cpi();
    let c_parser = run_timed(parser, &kind, cfg, 100_000).unwrap().cpi();
    assert!(
        c_mcf > c_parser * 3.0,
        "mcf CPI {c_mcf:.2} vs parser {c_parser:.2}"
    );
}

#[test]
fn store_buffer_sweep_is_monotone_at_the_ends() {
    let b = &primary_suite()[1]; // applu: store-heavy streaming
    let kind = L2Kind::Plain(PolicyKind::Lru);
    let tiny = run_timed(
        b,
        &kind,
        CpuConfig::paper_default().store_buffer(1),
        100_000,
    )
    .unwrap();
    let huge = run_timed(
        b,
        &kind,
        CpuConfig::paper_default().store_buffer(256),
        100_000,
    )
    .unwrap();
    assert!(
        tiny.cycles > huge.cycles,
        "store buffer pressure must cost cycles ({} vs {})",
        tiny.cycles,
        huge.cycles
    );
}

#[test]
fn prelude_exports_compile() {
    // The facade's prelude must expose everything the README promises.
    let _g: Geometry = Geometry::new(4096, 64, 4).unwrap();
    let _p: PolicyKind = PolicyKind::Lru;
    let _c: AdaptiveConfig = AdaptiveConfig::paper_default();
    let _h = HistoryKind::paper_default();
    let _t = TagMode::Full;
    let _cfg = CpuConfig::paper_default();
}

#[test]
fn dip_is_competitive_but_adaptive_wins_lfu_side() {
    // DIP (insertion dueling, no shadow tags) must crush LRU on a
    // thrashing scan, but cannot match the adaptive cache where
    // frequency protection matters.
    use adaptive_cache::DipConfig;
    let suite = primary_suite();
    let applu = suite.iter().find(|b| b.name == "applu").unwrap();
    let insts = 600_000;
    let lru = run_functional_l2(applu, &L2Kind::Plain(PolicyKind::Lru), PAPER_L2, insts)
        .unwrap()
        .stats
        .l2_misses;
    let dip = run_functional_l2(applu, &L2Kind::Dip(DipConfig::paper_default()), PAPER_L2, insts)
        .unwrap()
        .stats
        .l2_misses;
    assert!(
        (dip as f64) < (lru as f64) * 0.95,
        "DIP {dip} should beat LRU {lru} on a thrashing scan"
    );
}
