//! Stress tests of the paper's 2x worst-case miss bound (Section 2.5 /
//! Appendix) on adversarially constructed traces.

use adaptive_cache::theory::check_two_x_bound;
use cache_sim::{BlockAddr, Geometry, PolicyKind};

fn geom() -> Geometry {
    Geometry::new(8 * 1024, 64, 8).unwrap() // 16 sets x 8 ways
}

/// A trace engineered to flip the per-set winner as often as possible:
/// alternating segments that are pathological for one component at a time.
fn adversarial_flipper(segments: usize, seg_len: usize) -> Vec<BlockAddr> {
    let mut t = Vec::with_capacity(segments * seg_len);
    for s in 0..segments {
        for i in 0..seg_len {
            let b = if s % 2 == 0 {
                // Scan slightly larger than the cache: LRU-pathological.
                (i % 160) as u64
            } else {
                // Shifting hot window: LFU-pathological.
                1000 + (s * 13) as u64 + (i % 40) as u64
            };
            t.push(BlockAddr::new(b));
        }
    }
    t
}

#[test]
fn bound_survives_rapid_phase_flipping() {
    for seg_len in [100, 500, 2500] {
        let trace = adversarial_flipper(40, seg_len);
        let r = check_two_x_bound(geom(), PolicyKind::Lru, PolicyKind::LFU5, &trace);
        assert!(r.holds, "seg_len {seg_len}: {r:?}");
    }
}

#[test]
fn bound_holds_for_every_policy_pairing() {
    let trace = adversarial_flipper(20, 800);
    let policies = [
        PolicyKind::Lru,
        PolicyKind::LFU5,
        PolicyKind::Fifo,
        PolicyKind::Mru,
    ];
    for &a in &policies {
        for &b in &policies {
            let r = check_two_x_bound(geom(), a, b, &trace);
            assert!(r.holds, "{a:?}/{b:?}: {r:?}");
        }
    }
}

#[test]
fn bound_is_not_vacuous() {
    // Sanity: the bound must actually constrain something — on the
    // flipping trace the components really do diverge.
    let trace = adversarial_flipper(30, 1000);
    let r = check_two_x_bound(geom(), PolicyKind::Lru, PolicyKind::LFU5, &trace);
    assert!(
        r.misses_a != r.misses_b,
        "adversarial trace failed to separate the components: {r:?}"
    );
    assert!(r.adaptive_misses > 0);
    assert!(r.bound() >= r.adaptive_misses);
}

#[test]
fn single_set_worst_case() {
    // A fully associative (single-set) cache concentrates all adversarial
    // pressure on one history buffer.
    let geom = Geometry::new(16 * 64, 64, 16).unwrap();
    let mut trace = Vec::new();
    for round in 0..200 {
        for i in 0..20u64 {
            trace.push(BlockAddr::new(if round % 2 == 0 { i } else { 100 + i / 2 }));
        }
    }
    let r = check_two_x_bound(geom, PolicyKind::Lru, PolicyKind::LFU5, &trace);
    assert!(r.holds, "{r:?}");
}
