//! End-to-end robustness check of the two-tier replay cache: a sweep
//! backed by a persistent `AC_REPLAY_DIR` store must produce
//! byte-identical results whether captures come from the front-end, the
//! in-memory tier, a warm disk store, a corrupted disk store (detected
//! → deleted → recaptured), an injected-fault I/O layer, or a lock
//! contention timeout. No scenario may ever yield different numbers —
//! the disk tier is allowed to change *speed and counters only*.
//!
//! The global telemetry recorder is install-once per process and all
//! `AC_REPLAY*` environment variables are process-global, so the whole
//! scenario chain lives in ONE `#[test]` function running sequentially.

use adaptive_cache::AdaptiveConfig;
use cache_sim::PolicyKind;
use cpu_model::{FaultyIo, IoFaultPlan};
use experiments::runner::MpkiResult;
use experiments::{replay_cache, replay_store, run_functional_l2, L2Kind, PAPER_L2};
use std::sync::Arc;
use workloads::primary_suite;

const INSTS: u64 = 50_000;

fn kinds() -> Vec<L2Kind> {
    vec![
        L2Kind::Adaptive(AdaptiveConfig::paper_default()),
        L2Kind::Plain(PolicyKind::Lru),
        L2Kind::Plain(PolicyKind::LFU5),
    ]
}

fn run_sweep() -> String {
    let mut out: Vec<MpkiResult> = Vec::new();
    for b in primary_suite().iter().take(2) {
        for k in kinds() {
            out.push(run_functional_l2(b, &k, PAPER_L2, INSTS).expect("paper geometry is valid"));
        }
    }
    serde_json::to_string(&out).expect("results serialise")
}

fn counter(hub: &ac_telemetry::Telemetry, name: &str) -> u64 {
    hub.counters()
        .get(name)
        .map(|m| m.values().sum())
        .unwrap_or(0)
}

#[test]
fn warm_corrupt_faulty_and_contended_stores_all_replay_identically() {
    let hub = ac_telemetry::Telemetry::install(ac_telemetry::TelemetryConfig::default())
        .expect("this test binary must be the only global installer");
    let dir = std::env::temp_dir().join(format!("replay_store_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var("AC_REPLAY", "1");
    std::env::set_var("AC_REPLAY_DIR", &dir);

    // --- Scenario 1: cold run captures live and persists every entry.
    replay_cache::clear();
    let cold = run_sweep();
    let writes = counter(hub, "replay_store_writes_total");
    assert_eq!(writes, 2, "one persisted capture per benchmark");
    let entries = replay_store::scan(&dir).unwrap();
    assert_eq!(entries.len(), 2);
    assert!(entries.iter().all(|e| e.fingerprint.is_some()));

    // --- Scenario 2: warm store, cold memory — every capture loads
    // from disk, zero front-end runs, byte-identical results.
    let captures_before = counter(hub, "replay_cache_captures_total");
    replay_cache::clear();
    let warm = run_sweep();
    assert_eq!(warm, cold, "warm-store sweep diverged from cold run");
    assert_eq!(
        counter(hub, "replay_cache_captures_total"),
        captures_before,
        "warm store must not re-run the front-end"
    );
    assert_eq!(counter(hub, "replay_store_disk_hits_total"), 2);

    // --- Scenario 3: corrupt one entry in place. The load must detect
    // it, delete it, recapture, and still produce identical results.
    let victim = entries[0].path.clone();
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&victim, &bytes).unwrap();
    replay_cache::clear();
    let healed = run_sweep();
    assert_eq!(healed, cold, "recapture after corruption diverged");
    assert_eq!(counter(hub, "replay_store_corrupt_entries_total"), 1);
    assert_eq!(counter(hub, "replay_store_recaptures_total"), 1);
    // The recapture re-persisted the entry, so the store is whole again.
    for v in replay_store::verify_dir(&dir).unwrap() {
        assert!(
            v.result.is_ok(),
            "{:?} still corrupt: {:?}",
            v.info.path,
            v.result
        );
    }

    // --- Scenario 4: injected read faults (EIO then a short read).
    // Both loads fail loudly, both entries are recaptured, results are
    // unchanged — and the fault layer provably fired.
    let faulty = Arc::new(FaultyIo::new(IoFaultPlan {
        eio_reads: 1,
        short_read: Some(100),
        ..IoFaultPlan::default()
    }));
    replay_store::set_io(Some(faulty.clone()));
    replay_cache::clear();
    let under_faults = run_sweep();
    assert_eq!(
        under_faults, cold,
        "sweep under injected read faults diverged"
    );
    assert_eq!(faulty.injected(), 2, "both armed read faults must fire");
    assert_eq!(counter(hub, "replay_store_recaptures_total"), 3);

    // --- Scenario 5: injected ENOSPC on write. The persist fails, the
    // warn is swallowed, the sweep still completes identically.
    faulty.set_plan(IoFaultPlan {
        enospc_writes: 2,
        ..IoFaultPlan::default()
    });
    // Invalidate the store so the sweep must write (and fail to).
    for e in replay_store::scan(&dir).unwrap() {
        std::fs::remove_file(&e.path).unwrap();
    }
    replay_cache::clear();
    let under_enospc = run_sweep();
    assert_eq!(under_enospc, cold, "sweep under injected ENOSPC diverged");
    assert_eq!(faulty.injected(), 4, "both armed write faults must fire");
    replay_store::set_io(None);
    // Re-prime the store for the remaining scenarios.
    replay_cache::clear();
    assert_eq!(run_sweep(), cold);

    // --- Scenario 6: lock contention. A fresh foreign lock on one
    // entry forces a timeout; the cell captures live (never reads the
    // locked entry) and the sweep is still identical.
    std::env::set_var("AC_REPLAY_LOCK_TIMEOUT_MS", "60");
    let locked = format!(
        "{}.lock",
        replay_store::scan(&dir).unwrap()[0].path.display()
    );
    std::fs::write(&locked, b"424242\n").unwrap();
    let recaptures_before = counter(hub, "replay_store_recaptures_total");
    replay_cache::clear();
    let contended = run_sweep();
    assert_eq!(contended, cold, "lock-timeout fallback diverged");
    assert_eq!(
        counter(hub, "replay_store_recaptures_total"),
        recaptures_before + 1,
        "the locked entry counts one recapture"
    );

    // --- Scenario 7: the same lock, aged past the staleness horizon,
    // is stolen instead — the entry loads from disk again.
    std::env::set_var("AC_REPLAY_LOCK_STALE_MS", "1");
    std::thread::sleep(std::time::Duration::from_millis(20));
    let disk_hits_before = counter(hub, "replay_store_disk_hits_total");
    replay_cache::clear();
    let stolen = run_sweep();
    assert_eq!(stolen, cold, "stale-lock steal diverged");
    assert_eq!(
        counter(hub, "replay_store_disk_hits_total"),
        disk_hits_before + 2,
        "after stealing the stale lock every entry is a disk hit"
    );
    assert!(
        !std::path::Path::new(&locked).exists(),
        "stolen lock not cleaned up"
    );
    std::env::remove_var("AC_REPLAY_LOCK_TIMEOUT_MS");
    std::env::remove_var("AC_REPLAY_LOCK_STALE_MS");

    // --- Scenario 8: `AC_REPLAY_CACHE_MB` is re-read per call (the cap
    // used to be latched in a OnceLock, making it untestable in-process).
    // A zero cap evicts everything just published...
    std::env::set_var("AC_REPLAY_CACHE_MB", "0");
    let evictions_before = counter(hub, "replay_cache_evictions_total");
    replay_cache::clear();
    let capped = run_sweep();
    assert_eq!(capped, cold, "zero-cap sweep diverged");
    assert!(
        counter(hub, "replay_cache_evictions_total") > evictions_before,
        "a zero cap must evict"
    );
    // ...and restoring the default is honoured immediately, same process.
    std::env::remove_var("AC_REPLAY_CACHE_MB");
    let evictions_mid = counter(hub, "replay_cache_evictions_total");
    replay_cache::clear();
    assert_eq!(run_sweep(), cold);
    assert_eq!(
        counter(hub, "replay_cache_evictions_total"),
        evictions_mid,
        "default cap must not evict this working set"
    );

    std::env::remove_var("AC_REPLAY_DIR");
    std::env::remove_var("AC_REPLAY");
    let _ = std::fs::remove_dir_all(&dir);
}
