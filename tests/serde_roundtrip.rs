//! Serde round-trips for every serialisable configuration type: the
//! experiment artefacts under `results/` must be loss-free.

use adaptive_cache::{AdaptiveConfig, HistoryKind, SbarConfig};
use cache_sim::{Geometry, PolicyKind, TagMode};
use cpu_model::CpuConfig;
use experiments::Table;
use workloads::{extended_suite, Benchmark};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialise");
    serde_json::from_str(&json).expect("deserialise")
}

#[test]
fn adaptive_config_roundtrips() {
    for cfg in [
        AdaptiveConfig::paper_default(),
        AdaptiveConfig::paper_full_tags(),
        AdaptiveConfig::with_policies(PolicyKind::Fifo, PolicyKind::Mru)
            .shadow_tag_mode(TagMode::PartialXor { bits: 6 })
            .history_kind(HistoryKind::Saturating { bits: 4 }),
    ] {
        assert_eq!(roundtrip(&cfg), cfg);
    }
}

#[test]
fn sbar_config_roundtrips() {
    let cfg = SbarConfig::paper_partial_tags();
    assert_eq!(roundtrip(&cfg), cfg);
}

#[test]
fn cpu_config_roundtrips() {
    let cfg = CpuConfig::paper_default().store_buffer(32);
    assert_eq!(roundtrip(&cfg), cfg);
}

#[test]
fn geometry_roundtrips() {
    for g in [
        Geometry::new(512 * 1024, 64, 8).unwrap(),
        Geometry::with_sets(1024, 64, 9).unwrap(),
        Geometry::with_sets(3, 128, 2).unwrap(),
    ] {
        assert_eq!(roundtrip(&g), g);
    }
}

#[test]
fn every_benchmark_spec_roundtrips() {
    for b in extended_suite() {
        let json = serde_json::to_string(&b).expect("serialise benchmark");
        let back: Benchmark = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, b, "{} spec does not round-trip", b.name);
        // A deserialised spec must generate the identical stream.
        let a: Vec<_> = b.spec.generator().take(200).collect();
        let c: Vec<_> = back.spec.generator().take(200).collect();
        assert_eq!(a, c, "{} stream diverges after round-trip", b.name);
    }
}

#[test]
fn tables_roundtrip() {
    let mut t = Table::new("title", "k", vec!["a".into(), "b".into()]);
    t.push_row("r1", vec![1.5, -2.0]);
    t.push_average();
    assert_eq!(roundtrip(&t), t);
}
