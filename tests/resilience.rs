//! End-to-end resilience tests: the issue's acceptance scenarios.
//!
//! * A 3×3 (benchmark × L2) sweep with one injected-panic cell must
//!   finish the other 8 cells, report a partial exit code, and leave a
//!   journal behind.
//! * Restarting the sweep in resume mode must recompute only the failed
//!   cell (skip counts are asserted).
//! * A corrupted/truncated trace corpus must surface typed
//!   [`TraceError`]s, never panics or pathological allocations.
//! * A wedged (stalling) cache cell must be timed out by the supervisor.

use std::path::PathBuf;
use std::time::Duration;

use experiments::resilience::{journal_path, Journal, JournalStatus, EXIT_OK, EXIT_PARTIAL};
use experiments::runner::MpkiResult;
use experiments::{
    run_functional_l2, run_sweep, CellOutcome, ExperimentError, FaultSpec, FaultyRead, L2Kind,
    SupervisorConfig, PAPER_L2,
};
use workloads::trace_io::{self, TraceError};
use workloads::{primary_suite, Benchmark, Inst, InstKind};

const INSTS: u64 = 20_000;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ac_accept_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// The 3×3 grid: three benchmarks × the paper's headline trio, with the
/// organisation of cell `poison` (if any) wrapped in a first-access panic.
fn grid(poison: Option<usize>) -> Vec<(usize, Benchmark, L2Kind)> {
    let suite = primary_suite();
    let benches = [&suite[0], &suite[1], &suite[2]];
    let mut cells = Vec::new();
    for b in benches {
        for l2 in L2Kind::headline_trio() {
            let i = cells.len();
            let l2 = if poison == Some(i) {
                L2Kind::Faulty {
                    fault: FaultSpec::panic_at(1),
                    inner: Box::new(l2),
                }
            } else {
                l2
            };
            cells.push((i, b.clone(), l2));
        }
    }
    cells
}

/// Stable across restarts and independent of the fault wrapper, so a
/// fixed rerun of a failed cell resumes against the same key.
fn key_of(cell: &(usize, Benchmark, L2Kind)) -> String {
    format!("{}:{}", cell.0, cell.1.name)
}

fn run_cell(cell: (usize, Benchmark, L2Kind)) -> Result<MpkiResult, ExperimentError> {
    run_functional_l2(&cell.1, &cell.2, PAPER_L2, INSTS)
}

#[test]
fn three_by_three_sweep_survives_injected_panic_then_resumes() {
    let dir = tmp_dir("sweep3x3");
    let cfg = SupervisorConfig {
        retries: 0,
        journal: Some(journal_path(&dir, "accept")),
        ..Default::default()
    };

    // Kill run: cell 4 (centre of the grid) panics on its first L2 access.
    let rep = run_sweep(&grid(Some(4)), &cfg, key_of, run_cell).unwrap();
    assert_eq!(rep.cells.len(), 9);
    assert_eq!(rep.done(), 8, "the 8 healthy cells must finish");
    assert_eq!(rep.failed(), 1);
    assert_eq!(rep.exit_code(), EXIT_PARTIAL);
    match &rep.cells[4].outcome {
        CellOutcome::Failed(ExperimentError::Panic(m)) => {
            assert!(m.contains("injected fault"), "{m}");
        }
        other => panic!("expected a panic failure in cell 4, got {other:?}"),
    }

    // The journal on disk agrees: 8 ok entries, 1 failed.
    let journal = Journal::open(journal_path(&dir, "accept")).unwrap();
    assert_eq!(journal.entries().len(), 9);
    assert_eq!(journal.completed().len(), 8);
    assert_eq!(
        journal
            .entries()
            .iter()
            .filter(|e| e.status == JournalStatus::Failed)
            .count(),
        1
    );

    // Resume run with the fault fixed: only the failed cell recomputes.
    let cfg = SupervisorConfig {
        resume: true,
        ..cfg
    };
    let rep2 = run_sweep(&grid(None), &cfg, key_of, run_cell).unwrap();
    assert_eq!(rep2.resumed(), 8, "completed cells must be skipped");
    assert_eq!(rep2.done(), 1, "only the failed cell recomputes");
    assert_eq!(rep2.failed(), 0);
    assert_eq!(rep2.exit_code(), EXIT_OK);
    assert!(rep2.is_complete());

    // Resumed values round-tripped through the journal faithfully.
    let values = rep2.values();
    assert_eq!(values.len(), 9);
    for ((i, b, _), v) in grid(None).iter().zip(&values) {
        assert_eq!(&v.benchmark, &b.name, "cell {i} resumed the wrong value");
        assert!(v.stats.instructions > 0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_honours_ac_resume_env() {
    // `journalled` is the only env-reading entry point; this is the only
    // test in the binary touching AC_RESUME, so no cross-test races.
    std::env::remove_var("AC_RESUME");
    let dir = tmp_dir("env");
    let cfg = SupervisorConfig::journalled(&dir, "envfig");
    assert!(!cfg.resume, "no env var, no resume");
    std::env::set_var("AC_RESUME", "1");
    let cfg = SupervisorConfig::journalled(&dir, "envfig");
    assert!(cfg.resume);
    assert_eq!(
        cfg.journal.as_deref(),
        Some(&*dir.join("envfig.journal.jsonl"))
    );
    std::env::remove_var("AC_RESUME");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wedged_cache_cell_times_out_under_deadline() {
    let suite = primary_suite();
    let bench = suite[0].clone();
    // One healthy cell and one that stalls 30s on its first L2 access.
    let cells = vec![
        (
            0usize,
            bench.clone(),
            L2Kind::Plain(cache_sim::PolicyKind::Lru),
        ),
        (
            1usize,
            bench,
            L2Kind::Faulty {
                fault: FaultSpec::stall_at(1, 30_000),
                inner: Box::new(L2Kind::Plain(cache_sim::PolicyKind::Lru)),
            },
        ),
    ];
    let cfg = SupervisorConfig {
        deadline: Some(Duration::from_millis(250)),
        retries: 0,
        ..Default::default()
    };
    let rep = run_sweep(&cells, &cfg, key_of, run_cell).unwrap();
    assert_eq!(rep.done(), 1);
    assert_eq!(rep.timed_out(), 1, "the stalled cell must be abandoned");
    assert_eq!(rep.exit_code(), EXIT_PARTIAL);
    assert!(matches!(rep.cells[1].outcome, CellOutcome::TimedOut(_)));
}

// ---------------------------------------------------------------------
// Corrupted / truncated trace corpus, delivered through `FaultyRead`.
// ---------------------------------------------------------------------

fn sample_trace() -> Vec<u8> {
    let insts = (0..64u64).map(|i| Inst {
        pc: 0x1000 + i * 4,
        kind: match i % 4 {
            0 => InstKind::Load {
                addr: 0x8000 + i * 64,
            },
            1 => InstKind::IntAlu,
            2 => InstKind::Store {
                addr: 0x9000 + i * 64,
            },
            _ => InstKind::Branch {
                taken: i % 8 == 3,
                target: 0x1000,
            },
        },
        deps: [1, 0],
    });
    let mut buf = Vec::new();
    trace_io::write_binary(&mut buf, insts).unwrap();
    buf
}

#[test]
fn truncated_trace_is_a_typed_error_not_a_panic() {
    let bytes = sample_trace();
    // Cut the stream mid-record, well past the header. Under the v3
    // format the cut lands in (or removes part of) the trailing CRC, so
    // the checksum verification catches it; a cut in a v2 trace instead
    // surfaces as Truncated or an UnexpectedEof from read_exact. All are
    // typed, none panic.
    let cut = bytes.len() as u64 - 7;
    let err = trace_io::read_binary(FaultyRead::new(&bytes[..]).truncate_at(cut)).unwrap_err();
    match err {
        TraceError::Checksum { .. } => {}
        TraceError::Truncated { records } => assert!(records < 64, "read {records}"),
        TraceError::Io(e) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
        other => panic!("expected truncation, got {other:?}"),
    }
}

#[test]
fn corrupted_magic_is_rejected() {
    let bytes = sample_trace();
    let err = trace_io::read_binary(FaultyRead::new(&bytes[..]).flip_bit(0, 0x20)).unwrap_err();
    assert!(matches!(err, TraceError::BadHeader), "{err:?}");
}

#[test]
fn hostile_record_count_is_rejected_before_allocation() {
    // Flip the top bit of the little-endian count (header bytes 5..13):
    // the header now claims ~2^63 records for a ~1 KiB body. A reader
    // that pre-allocates from the header would abort; ours must reject
    // before allocating. A current (v3) trace fails its trailing CRC —
    // which is verified before any allocation sized from the header —
    // while a legacy v2 trace (no checksum to save it) must still return
    // BadCount after comparing against the bytes actually present.
    let bytes = sample_trace();
    let err = trace_io::read_binary(FaultyRead::new(&bytes[..]).flip_bit(12, 0x80)).unwrap_err();
    assert!(matches!(err, TraceError::Checksum { .. }), "{err:?}");

    let mut v2 = bytes.clone();
    v2[4] = 2; // rewrite version; v2 has no trailing CRC, drop it
    v2.truncate(v2.len() - 4);
    let err = trace_io::read_binary(FaultyRead::new(&v2[..]).flip_bit(12, 0x80)).unwrap_err();
    match err {
        TraceError::BadCount {
            declared,
            max_possible,
        } => {
            assert!(declared > 1 << 62, "{declared}");
            assert!(max_possible < 1024, "{max_possible}");
        }
        other => panic!("expected BadCount, got {other:?}"),
    }
}

#[test]
fn io_error_mid_trace_propagates() {
    let bytes = sample_trace();
    let err = trace_io::read_binary(FaultyRead::new(&bytes[..]).error_at(40)).unwrap_err();
    match &err {
        TraceError::Io(e) => assert!(e.to_string().contains("injected fault"), "{e}"),
        other => panic!("expected Io, got {other:?}"),
    }
    // And the typed error converts into the pipeline error, not a panic.
    let exp: ExperimentError = err.into();
    assert!(matches!(exp, ExperimentError::Trace(_)));
}

#[test]
fn flipped_payload_bit_still_parses_or_fails_typed() {
    // A bit flip anywhere past the version byte must yield a typed error
    // — never a panic, and (v3) never silently-different instructions:
    // the trailing CRC covers the count, every record, and itself, so
    // every single-bit corruption is detected before decoding.
    let bytes = sample_trace();
    for at in 13..bytes.len() as u64 {
        match trace_io::read_binary(FaultyRead::new(&bytes[..]).flip_bit(at, 0x10)) {
            Err(TraceError::Checksum { .. }) => {}
            Ok(_) => panic!("byte {at}: corruption decoded silently"),
            Err(other) => panic!("byte {at}: unexpected {other:?}"),
        }
    }
}
