//! End-to-end check of front-end memoisation: a fig03-style sweep run
//! with `AC_REPLAY=0` (front-end re-simulated in every cell) and with
//! `AC_REPLAY=1` (captured once per benchmark, replayed per cell) must
//! produce byte-identical results — same serialised `MpkiResult`s and
//! the same telemetry timeline windows (wall-clock fields excluded).
//!
//! The global telemetry recorder is install-once per process and the
//! `AC_REPLAY` environment variable is process-global too, so the whole
//! scenario lives in ONE `#[test]` function running cells sequentially.

use adaptive_cache::AdaptiveConfig;
use cache_sim::PolicyKind;
use experiments::runner::MpkiResult;
use experiments::{replay_cache, run_functional_l2, FaultSpec, L2Kind, PAPER_L2};
use workloads::primary_suite;

const INSTS: u64 = 60_000;

/// The organisations under test: the headline trio, the partial-tag
/// adaptive configuration (exercises the RNG aliasing path), and a
/// benign deterministic fault wrapper (address-line flips, no panics).
fn kinds() -> Vec<L2Kind> {
    vec![
        L2Kind::Adaptive(AdaptiveConfig::paper_full_tags()),
        L2Kind::Adaptive(AdaptiveConfig::paper_default()),
        L2Kind::Plain(PolicyKind::LFU5),
        L2Kind::Plain(PolicyKind::Lru),
        L2Kind::Faulty {
            fault: FaultSpec {
                flip_tag_mask: 0x1,
                flip_tag_every: Some(97),
                ..FaultSpec::default()
            },
            inner: Box::new(L2Kind::Plain(PolicyKind::Lru)),
        },
    ]
}

fn run_sweep() -> Vec<MpkiResult> {
    let mut out = Vec::new();
    for b in primary_suite().iter().take(2) {
        for k in kinds() {
            out.push(run_functional_l2(b, &k, PAPER_L2, INSTS).expect("paper geometry is valid"));
        }
    }
    out
}

#[test]
fn sweep_is_byte_identical_with_and_without_replay() {
    // Timelines on, with a window small enough that every cell closes
    // several windows (and the capture's schedule emulation matters).
    let cfg = ac_telemetry::TelemetryConfig::default().with_timeline_window(1 << 12);
    let hub = ac_telemetry::Telemetry::install(cfg)
        .expect("this test binary must be the only global installer");

    std::env::set_var("AC_REPLAY", "0");
    replay_cache::clear();
    let direct = run_sweep();
    let direct_timelines = hub.timelines();

    std::env::set_var("AC_REPLAY", "1");
    replay_cache::clear();
    let replayed = run_sweep();
    let all_timelines = hub.timelines();
    std::env::remove_var("AC_REPLAY");

    // Results must serialise to the same bytes.
    let direct_json = serde_json::to_string(&direct).unwrap();
    let replayed_json = serde_json::to_string(&replayed).unwrap();
    assert_eq!(direct_json, replayed_json, "replayed sweep diverged");

    // Each mode attached one timeline per cell, in the same order, with
    // the same labels and the same windows (dt_us is wall-clock and the
    // only field allowed to differ).
    let replay_timelines = &all_timelines[direct_timelines.len()..];
    assert_eq!(direct_timelines.len(), direct.len());
    assert_eq!(replay_timelines.len(), direct.len());
    for (d, r) in direct_timelines.iter().zip(replay_timelines) {
        assert_eq!(d.label, r.label);
        assert_eq!(d.unit, r.unit);
        assert_eq!(d.windows.len(), r.windows.len(), "{}", d.label);
        for (dw, rw) in d.windows.iter().zip(&r.windows) {
            assert_eq!(dw.start_tick, rw.start_tick, "{}", d.label);
            assert_eq!(dw.end_tick, rw.end_tick, "{}", d.label);
            assert_eq!(dw.instructions, rw.instructions, "{}", d.label);
            assert_eq!(dw.d, rw.d, "{}", d.label);
            assert_eq!(dw.gauges, rw.gauges, "{}", d.label);
        }
        // Conservation: the windows partition the run, so their
        // instruction counts must sum to the budget in both modes.
        let insts: u64 = d.windows.iter().map(|w| w.instructions).sum();
        assert_eq!(insts, INSTS, "{}", d.label);
        assert_eq!(
            r.windows.iter().map(|w| w.instructions).sum::<u64>(),
            INSTS,
            "{}",
            r.label
        );
    }

    // The replay pass captured once per benchmark and hit the cache for
    // every other cell.
    let captures: u64 = hub
        .counters()
        .get("replay_cache_captures_total")
        .map(|m| m.values().sum())
        .unwrap_or(0);
    let hits: u64 = hub
        .counters()
        .get("replay_cache_hits_total")
        .map(|m| m.values().sum())
        .unwrap_or(0);
    assert_eq!(captures, 2, "one capture per benchmark");
    assert_eq!(
        hits as usize,
        replayed.len() - 2,
        "every other cell replays"
    );

    // Memoised cells advertise themselves on their run spans.
    let spans = hub.spans();
    let skipped = spans
        .iter()
        .filter(|s| {
            s.args
                .iter()
                .any(|(k, v)| *k == "frontend_skipped" && v == "true")
        })
        .count();
    assert_eq!(skipped, replayed.len() - 2, "cache hits mark their spans");
}
