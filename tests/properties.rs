//! Property-based tests (proptest) on the core data structures and the
//! paper's invariants.

use adaptive_cache::theory::check_two_x_bound;
use adaptive_cache::{AdaptiveCache, AdaptiveConfig, HistoryKind, MissHistory};
use cache_sim::{Address, BlockAddr, Cache, CacheModel, Geometry, PolicyKind, TagArray, TagMode};
use proptest::prelude::*;

/// Strategy: a short block-address trace with tunable footprint.
fn trace(max_block: u64, len: usize) -> impl Strategy<Value = Vec<BlockAddr>> {
    proptest::collection::vec((0..max_block).prop_map(BlockAddr::new), 1..=len)
}

/// Strategy: one of the deterministic standard policies.
fn deterministic_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Lru),
        Just(PolicyKind::LFU5),
        Just(PolicyKind::Fifo),
        Just(PolicyKind::Mru),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The paper's theorem: with counter history and full tags, adaptive
    /// misses are bounded by twice the better component's misses plus a
    /// cold-start constant — for ANY trace and any policy pair.
    #[test]
    fn two_x_miss_bound_holds(
        trace in trace(600, 4000),
        a in deterministic_policy(),
        b in deterministic_policy(),
    ) {
        let geom = Geometry::new(8 * 1024, 64, 4).unwrap();
        let report = check_two_x_bound(geom, a, b, &trace);
        prop_assert!(
            report.holds,
            "bound violated for {a:?}/{b:?}: {report:?}"
        );
    }

    /// Accounting invariant: hits + misses == accesses, evictions never
    /// exceed misses, writebacks never exceed evictions.
    #[test]
    fn stats_are_consistent(
        trace in trace(2000, 3000),
        writes in proptest::collection::vec(any::<bool>(), 3000),
    ) {
        let geom = Geometry::new(16 * 1024, 64, 8).unwrap();
        let mut cache = Cache::new(geom, PolicyKind::Lru, 1);
        for (block, write) in trace.iter().zip(writes.iter()) {
            cache.access(*block, *write);
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert!(s.evictions <= s.misses);
        prop_assert!(s.writebacks <= s.evictions);
        prop_assert_eq!(s.read_misses + s.write_misses, s.misses);
    }

    /// A freshly accessed block is always resident (full tags), for every
    /// policy.
    #[test]
    fn accessed_block_is_resident(
        trace in trace(5000, 2000),
        policy in deterministic_policy(),
    ) {
        let geom = Geometry::new(16 * 1024, 64, 8).unwrap();
        let mut tags = TagArray::new(geom, TagMode::Full, policy, 9);
        for &block in &trace {
            tags.access(block);
            prop_assert!(tags.contains_block(block));
        }
    }

    /// Partial tags answer membership with false *positives* only at the
    /// moment of access: a just-accessed block is always reported present
    /// (its own partial tag matches itself), and when the working set
    /// fits in one set without evictions, partial membership is a
    /// superset of full membership.
    #[test]
    fn partial_tags_err_towards_presence(
        trace in trace(100_000, 1500),
        bits in 4u32..12,
    ) {
        let geom = Geometry::new(8 * 1024, 64, 4).unwrap();
        let mut partial = TagArray::new(
            geom,
            TagMode::PartialLow { bits },
            PolicyKind::Fifo,
            2,
        );
        for &block in &trace {
            partial.access(block);
            prop_assert!(partial.contains_block(block));
        }
        let s = partial.stats();
        prop_assert_eq!(s.accesses(), trace.len() as u64);

        // Eviction-free regime: every full-resident block is also
        // partial-resident (aliasing only adds apparent members).
        let mut full_small = TagArray::new(geom, TagMode::Full, PolicyKind::Fifo, 2);
        let mut partial_small =
            TagArray::new(geom, TagMode::PartialLow { bits }, PolicyKind::Fifo, 2);
        let assoc = geom.associativity() as u64;
        for i in 0..assoc {
            // `i * num_sets` all map to set 0; fewer blocks than ways.
            let b = BlockAddr::new(i * geom.num_sets() as u64);
            full_small.access(b);
            partial_small.access(b);
        }
        for i in 0..assoc {
            let b = BlockAddr::new(i * geom.num_sets() as u64);
            if full_small.contains_block(b) {
                prop_assert!(partial_small.contains_block(b));
            }
        }
    }

    /// Adapting between two identical deterministic policies is exactly
    /// the plain cache (Algorithm 1 degenerates to the component).
    #[test]
    fn adaptive_over_equal_policies_is_identity(
        trace in trace(1200, 4000),
        policy in prop_oneof![Just(PolicyKind::Lru), Just(PolicyKind::Fifo)],
    ) {
        let geom = Geometry::new(8 * 1024, 64, 4).unwrap();
        let cfg = AdaptiveConfig::with_policies(policy, policy);
        let mut adaptive = AdaptiveCache::new(geom, cfg, 3);
        let mut plain = Cache::new(geom, policy, 3);
        for &block in &trace {
            let a = adaptive.access(block, false);
            let p = plain.access(block, false);
            prop_assert_eq!(a.hit, p.hit);
        }
    }

    /// The bit-vector history never reports more window misses than its
    /// capacity and its winner matches a recount of the recorded events.
    #[test]
    fn history_window_is_bounded_and_consistent(
        events in proptest::collection::vec((any::<bool>(), any::<bool>()), 0..200),
        m in 1u32..=64,
    ) {
        let mut h = MissHistory::new(HistoryKind::BitVector { m });
        let mut recorded: Vec<bool> = Vec::new(); // true = A missed
        for &(a, b) in &events {
            h.record(a, b);
            if a != b {
                recorded.push(a);
            }
        }
        let window: Vec<bool> = recorded
            .iter()
            .rev()
            .take(m as usize)
            .copied()
            .collect();
        let a_misses = window.iter().filter(|&&x| x).count() as u64;
        let b_misses = window.len() as u64 - a_misses;
        prop_assert_eq!(h.window_misses(), (a_misses, b_misses));
    }

    /// Geometry decompose/recompose is the identity for any address.
    #[test]
    fn geometry_roundtrip(
        raw in any::<u64>(),
        line_pow in 4u32..9,
        assoc in 1usize..=16,
        sets_pow in 0u32..12,
    ) {
        let line = 1usize << line_pow;
        let sets = 1usize << sets_pow;
        let geom = Geometry::with_sets(sets, line, assoc).unwrap();
        let block = geom.block_of(Address::new(raw));
        let rebuilt = geom.block_from_parts(geom.tag(block), geom.set_index(block));
        prop_assert_eq!(rebuilt, block);
    }

    /// Caches never hold more distinct blocks than their capacity: after
    /// any trace, the number of still-resident trace blocks is bounded.
    #[test]
    fn residency_is_capacity_bounded(trace in trace(4000, 3000)) {
        let geom = Geometry::new(8 * 1024, 64, 4).unwrap(); // 128 blocks
        let mut cache = Cache::new(geom, PolicyKind::LFU5, 4);
        for &block in &trace {
            cache.access(block, false);
        }
        let resident = (0..4000u64)
            .filter(|&b| cache.contains_block(BlockAddr::new(b)))
            .count();
        prop_assert!(resident <= 128, "{resident} blocks resident in a 128-block cache");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Workload generators are pure functions of their spec (determinism
    /// survives arbitrary instruction counts).
    #[test]
    fn generators_are_deterministic(which in 0usize..26, n in 1usize..3000) {
        let suite = workloads::primary_suite();
        let b = &suite[which];
        let a: Vec<_> = b.spec.generator().take(n).collect();
        let c: Vec<_> = b.spec.generator().take(n).collect();
        prop_assert_eq!(a, c);
    }
}
