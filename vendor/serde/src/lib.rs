//! Minimal offline stand-in for the `serde` crate.
//!
//! This container cannot reach crates.io, so the workspace vendors the
//! slice of serde it uses (see `[patch.crates-io]` in the workspace
//! `Cargo.toml` and `vendor/README.md`). Unlike real serde — which is
//! generic over serialisation formats — this stand-in targets exactly
//! one format, the JSON value tree in [`value::Value`], because JSON is
//! the only format the workspace serialises:
//!
//! - [`Serialize`] converts a value into a [`value::Value`],
//! - [`Deserialize`] (also re-exported as `de::DeserializeOwned`)
//!   rebuilds a value from a [`value::Value`],
//! - `#[derive(Serialize, Deserialize)]` comes from the vendored
//!   `serde_derive` and supports the attribute subset the workspace
//!   uses: `default`, `default = "path"`, `skip_serializing_if`,
//!   `rename_all = "snake_case"`, and `untagged`.
//!
//! The trait *bounds* (`T: Serialize`, `R: DeserializeOwned`) are
//! spelling-compatible with real serde, so user code does not change
//! when the real crates are restored; only this vendor directory and
//! the `[patch.crates-io]` section are deleted.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::Value;

use std::fmt;

/// Error raised by (de)serialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a JSON [`Value`].
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a JSON value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

pub mod de {
    //! Deserialisation traits (re-exports for serde-compatible paths).
    pub use crate::Deserialize;
    /// Alias matching `serde::de::DeserializeOwned`; this stand-in has
    /// no borrowed deserialisation, so every `Deserialize` is owned.
    pub use crate::Deserialize as DeserializeOwned;
    pub use crate::Error;
}

pub mod ser {
    //! Serialisation traits (re-exports for serde-compatible paths).
    pub use crate::Error;
    pub use crate::Serialize;
}

// ---------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected boolean, got {v}")))
    }
}

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(value::Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!("expected unsigned integer, got {v}")))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range")))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(value::Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!("expected integer, got {v}")))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range")))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(value::Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {v}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(value::Number::from_f64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single character")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {v}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of {N} elements, got {len}")))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other}"))),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other}"))),
        }
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other}"))),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::custom(format!("expected null, got {other}"))),
        }
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(Error::custom(format!(
                                "expected array of {expected}, got {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!("expected array, got {other}"))),
                }
            }
        }
    )*};
}
ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
