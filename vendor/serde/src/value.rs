//! The JSON value tree shared by the vendored `serde` and `serde_json`.
//!
//! `serde_json` re-exports [`Value`] so `serde_json::Value` in user
//! code names this exact type.

use std::collections::BTreeMap;
use std::fmt;

/// Map type used for JSON objects (sorted keys, like default
/// `serde_json`).
pub type Map = BTreeMap<String, Value>;

/// A JSON number: unsigned, signed, or floating point.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// A non-negative integer.
    U(u64),
    /// A negative integer.
    I(i64),
    /// A floating-point number.
    F(f64),
}

impl Number {
    /// Wraps an unsigned integer.
    pub fn from_u64(n: u64) -> Self {
        Number::U(n)
    }

    /// Wraps a signed integer (normalised to `U` when non-negative so
    /// integer comparisons behave uniformly).
    pub fn from_i64(n: i64) -> Self {
        if n >= 0 {
            Number::U(n as u64)
        } else {
            Number::I(n)
        }
    }

    /// Wraps a float.
    pub fn from_f64(n: f64) -> Self {
        Number::F(n)
    }

    /// The value as `u64`, when representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(n) => Some(n),
            Number::I(n) => u64::try_from(n).ok(),
            Number::F(_) => None,
        }
    }

    /// The value as `i64`, when representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(n) => i64::try_from(n).ok(),
            Number::I(n) => Some(n),
            Number::F(_) => None,
        }
    }

    /// The value as `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::U(n) => Some(n as f64),
            Number::I(n) => Some(n as f64),
            Number::F(n) => Some(n),
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::F(a), Number::F(b)) => a == b,
            (Number::F(_), _) | (_, Number::F(_)) => false,
            _ => match (self.as_i64(), other.as_i64()) {
                (Some(a), Some(b)) => a == b,
                // At least one side exceeds i64::MAX; compare as u64.
                _ => self.as_u64() == other.as_u64(),
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U(n) => write!(f, "{n}"),
            Number::I(n) => write!(f, "{n}"),
            // `{:?}` keeps a trailing `.0` on integral floats, matching
            // serde_json's distinction between 1 and 1.0, and prints
            // the shortest representation that round-trips.
            Number::F(n) if n.is_finite() => write!(f, "{n:?}"),
            // JSON has no NaN/Infinity; serde_json emits null.
            Number::F(_) => write!(f, "null"),
        }
    }
}

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// A key → value map (sorted keys).
    Object(Map),
}

impl Value {
    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, when representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The numeric payload as `i64`, when representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The string payload, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if this is an `Object`.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True if this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True if this is a `String`.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// True if this is a `Number`.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// True if this is an `Array`.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// True if this is an `Object`.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Object member lookup (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Writes compact JSON into `out`.
    pub fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Writes pretty JSON (2-space indent, like `serde_json`).
    pub fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Value::Object(m) if !m.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_json_string(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

static NULL: Value = Value::Null;

/// `value["key"]` — `Null` for missing keys or non-objects, like the
/// real serde_json.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

/// `value[i]` — `Null` out of bounds or on non-arrays.
impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        if f.alternate() {
            self.write_pretty(&mut s, 0);
        } else {
            self.write_compact(&mut s);
        }
        f.write_str(&s)
    }
}

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Number(Number::from_i64(n as i64))
            }
        }
    )*};
}
value_from_int!(i8, i16, i32, i64, isize);

macro_rules! value_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Number(Number::from_u64(n as u64))
            }
        }
    )*};
}
value_from_uint!(u8, u16, u32, u64, usize);

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(Number::from_f64(n))
    }
}

impl From<f32> for Value {
    fn from(n: f32) -> Value {
        Value::Number(Number::from_f64(f64::from(n)))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}
