//! Minimal offline stand-in for the `criterion` crate.
//!
//! The container cannot reach crates.io, so this vendors the API
//! subset the workspace's benches use (see `[patch.crates-io]` in the
//! workspace `Cargo.toml` and `vendor/README.md`): [`Criterion`],
//! benchmark groups with [`Throughput`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Statistics are deliberately simple — a calibrated wall-clock
//! median over a few batches, printed as `name  time/iter  (thrpt)`.
//! There is no warm-up analysis, outlier detection, or HTML report;
//! the numbers are indicative, not publication-grade.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, for derived throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, decimal multiple (API parity).
    BytesDecimal(u64),
}

/// Times one closure.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Runs `f` repeatedly and records its median time per call.
    ///
    /// Setting `AC_CRITERION_QUICK=1` shrinks the calibration target and
    /// sample count for CI smoke runs (noisier, but several times
    /// faster end-to-end).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let quick = std::env::var_os("AC_CRITERION_QUICK").is_some_and(|v| v != "0");
        let target = Duration::from_millis(if quick { 1 } else { 5 });
        let nsamples = if quick { 3 } else { 5 };
        // Calibrate: grow the batch until it runs for >= the target.
        let mut batch: u64 = 1;
        let batch = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || batch >= 1 << 20 {
                break batch.max(1);
            }
            batch = batch.saturating_mul(4);
        };
        // Measure a few batches and keep the median.
        let mut samples: Vec<f64> = (0..nsamples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                start.elapsed().as_secs_f64() / batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2] * 1e9;
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.3} s ", ns / 1_000_000_000.0)
    }
}

fn human_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:7.3} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:7.3} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:7.3} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:7.1} {unit}/s")
    }
}

fn report(name: &str, ns: f64, throughput: Option<Throughput>) {
    let thrpt = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({})", human_rate(n as f64 / (ns / 1e9), "elem"))
        }
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
            format!("  ({})", human_rate(n as f64 / (ns / 1e9), "B"))
        }
        None => String::new(),
    };
    println!("{name:<50} {}{thrpt}", human_time(ns));
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(&name.to_string(), b.ns_per_iter, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, name),
            b.ns_per_iter,
            self.throughput,
        );
        self
    }

    /// Ends the group (no-op; API parity).
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Declares `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.finish();
        c.bench_function("ungrouped", |b| b.iter(|| black_box(1 + 1)));
    }
}
