//! Minimal offline stand-in for the `serde_json` crate.
//!
//! Works against the vendored `serde` facade (see `vendor/README.md`):
//! [`Value`] is re-exported from there so `serde_json::Value` in user
//! code names the same type the `Serialize`/`Deserialize` traits
//! produce and consume. Provides the functions the workspace calls —
//! [`from_str`], [`to_string`], [`to_string_pretty`], [`to_value`],
//! [`from_value`], [`to_vec`], [`to_writer`] — plus the [`json!`]
//! macro, a recursive-descent JSON parser, and compact/pretty
//! printers.

#![forbid(unsafe_code)]

use serde::Serialize;
use std::fmt;

pub use serde::value::{Map, Number};
pub use serde::Value;

/// Error raised by JSON (de)serialisation or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serialisable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

/// Rebuilds a `T` from a [`Value`] tree.
pub fn from_value<T: serde::de::DeserializeOwned>(value: Value) -> Result<T> {
    T::from_value(&value).map_err(Error::from)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: serde::de::DeserializeOwned>(text: &str) -> Result<T> {
    let value = parse(text)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parses JSON bytes into a `T`.
pub fn from_slice<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let text =
        std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

/// Parses JSON from a reader into a `T`.
pub fn from_reader<R: std::io::Read, T: serde::de::DeserializeOwned>(mut rdr: R) -> Result<T> {
    let mut text = String::new();
    rdr.read_to_string(&mut text)
        .map_err(|e| Error::new(format!("read error: {e}")))?;
    from_str(&text)
}

/// Serialises to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.to_value().write_compact(&mut out);
    Ok(out)
}

/// Serialises to human-readable JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.to_value().write_pretty(&mut out, 0);
    Ok(out)
}

/// Serialises to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serialises compact JSON into a writer.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut w: W, value: &T) -> Result<()> {
    w.write_all(to_string(value)?.as_bytes())
        .map_err(|e| Error::new(format!("write error: {e}")))
}

/// Builds a [`Value`] from JSON-like syntax:
/// `json!(null)`, `json!(1.5)`, `json!([1, 2])`,
/// `json!({"k": v, "n": {"x": 1}})`, or any expression convertible
/// into a `Value` via [`to_value`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::json!($item)),* ])
    };
    ({ $($key:tt : $val:tt),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Map::new();
        $( __m.insert($key.to_string(), $crate::json!($val)); )*
        $crate::Value::Object(__m)
    }};
    ($other:expr) => {
        match $crate::to_value(&$other) {
            ::std::result::Result::Ok(v) => v,
            ::std::result::Result::Err(_) => $crate::Value::Null,
        }
    };
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        match self.bump() {
            Some(x) if x == b => Ok(()),
            other => Err(Error::new(format!(
                "expected `{}` at offset {}, found {:?}",
                b as char,
                self.pos.saturating_sub(1),
                other.map(|c| c as char)
            ))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` in array, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` in object, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pair?
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(Error::new("lone leading surrogate"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(Error::new("invalid low surrogate"));
                            }
                            let combined =
                                0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                    }
                    other => {
                        return Err(Error::new(format!(
                            "invalid escape {:?}",
                            other.map(|c| c as char)
                        )))
                    }
                },
                Some(_) => {
                    // Collect the full UTF-8 sequence starting one byte
                    // back (JSON strings are valid UTF-8 by
                    // construction: input is &str).
                    let start = self.pos - 1;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                    );
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = self
                .bump()
                .and_then(|c| (c as char).to_digit(16))
                .ok_or_else(|| Error::new("invalid \\u escape"))?;
            cp = cp * 16 + d;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(n)));
            }
        }
        text.parse::<f64>()
            .map(|n| Value::Number(Number::from_f64(n)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
        assert_eq!(from_str::<String>("\"a\\nb\\u0041\"").unwrap(), "a\nbA");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn round_trips_nested_values() {
        let v = json!({"a": [1, 2.5, "x"], "b": {"c": true}});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_printing_is_reparseable() {
        let v = json!({"k": [1, {"n": null}], "s": "line\nbreak"});
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn u64_round_trip_is_lossless() {
        let n = u64::MAX - 1;
        let text = to_string(&n).unwrap();
        assert_eq!(from_str::<u64>(&text).unwrap(), n);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<u64>("\"nope\"").is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            from_str::<String>("\"\\ud83e\\udd80\"").unwrap(),
            "\u{1F980}"
        );
    }
}
