//! Minimal offline stand-in for the `rand` crate (version 0.8 API subset).
//!
//! This container has no network access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses (see
//! `[patch.crates-io]` in the workspace `Cargo.toml` and
//! `vendor/README.md`). The API mirrors `rand 0.8`:
//!
//! - [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! - [`rngs::SmallRng`] — xoshiro256++ seeded via SplitMix64, matching
//!   `rand 0.8`'s 64-bit `SmallRng` algorithm so seeded streams stay
//!   reproducible if the real crate is restored,
//! - [`rngs::mock::StepRng`] for deterministic tests,
//! - `gen`, `gen_bool`, `gen_range` over the integer/float types the
//!   workspace uses.
//!
//! Delete `vendor/rand` and the corresponding `[patch.crates-io]` entry
//! to return to the real crate.

#![forbid(unsafe_code)]

/// The core of a random number generator: raw output words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Sampling conveniences layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            // Consume one word regardless, so the stream position does
            // not depend on `p`.
            let _ = self.next_u64();
            return true;
        }
        if p <= 0.0 {
            let _ = self.next_u64();
            return false;
        }
        // Compare in fixed point against a 64-bit scale of `p`.
        let scale = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < scale
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` seed, expanding it with
    /// SplitMix64 exactly like `rand_core 0.6` so seeded streams match
    /// the real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++, the
    /// algorithm behind `rand 0.8`'s 64-bit `SmallRng`.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point of xoshiro.
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            SmallRng { s }
        }
    }

    /// A slower general-purpose generator; here an alias for the same
    /// xoshiro core (the stand-in has no ChaCha implementation).
    pub type StdRng = SmallRng;

    pub mod mock {
        //! Deterministic mock generators for tests.

        use crate::RngCore;

        /// Yields `initial`, `initial + increment`, ... — useful for
        /// forcing specific choices in tests.
        #[derive(Clone, Debug, PartialEq, Eq)]
        pub struct StepRng {
            v: u64,
            step: u64,
        }

        impl StepRng {
            /// Creates the generator.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    step: increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.step);
                out
            }
        }
    }
}

pub mod distributions {
    //! Distributions usable with [`Rng::gen`](crate::Rng::gen).

    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform over a type's natural domain
    /// (`[0, 1)` for floats, the full range for integers).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits, exactly like rand 0.8.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub mod uniform {
        //! Uniform sampling over ranges.

        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// A range that [`Rng::gen_range`](crate::Rng::gen_range) can
        /// sample from.
        pub trait SampleRange<T> {
            /// Draws one sample; panics if the range is empty.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Maps a raw word into `[0, span)` by widening multiply
        /// (Lemire reduction, bias < 2^-64 — fine for simulation).
        fn reduce(word: u64, span: u64) -> u64 {
            ((u128::from(word) * u128::from(span)) >> 64) as u64
        }

        macro_rules! sample_uint {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end - self.start) as u64;
                        self.start + reduce(rng.next_u64(), span) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        if lo == <$t>::MIN && hi == <$t>::MAX {
                            return rng.next_u64() as $t;
                        }
                        let span = (hi - lo) as u64 + 1;
                        lo + reduce(rng.next_u64(), span) as $t
                    }
                }
            )*};
        }
        sample_uint!(u8, u16, u32, u64, usize);

        macro_rules! sample_int {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                        self.start.wrapping_add(reduce(rng.next_u64(), span) as $t)
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                        if span == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        lo.wrapping_add(reduce(rng.next_u64(), span + 1) as $t)
                    }
                }
            )*};
        }
        sample_int!(i8, i16, i32, i64, isize);

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + u * (self.end - self.start)
            }
        }
    }
}

/// Re-export mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..=5);
            assert!(y <= 5);
            let z = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn step_rng_steps() {
        let mut r = StepRng::new(7, 3);
        assert_eq!(r.next_u64(), 7);
        assert_eq!(r.next_u64(), 10);
    }

    #[test]
    fn dyn_rngcore_is_object_safe() {
        let mut r = StepRng::new(0, 1);
        let d: &mut dyn RngCore = &mut r;
        let _ = d.next_u64();
        let mut buf = [0u8; 5];
        d.fill_bytes(&mut buf);
    }
}
