//! Minimal offline stand-in for the `proptest` crate.
//!
//! The container cannot reach crates.io, so this vendors the slice of
//! proptest the workspace's property tests use (see
//! `[patch.crates-io]` in the workspace `Cargo.toml` and
//! `vendor/README.md`):
//!
//! - the [`Strategy`] trait with `prop_map`, plus strategies for
//!   ranges, [`Just`], tuples, [`collection::vec`], [`any`], and
//!   `prop_oneof!`;
//! - the [`proptest!`] macro running each test over `cases`
//!   deterministically seeded inputs (seeded per case index, so
//!   failures are reproducible);
//! - `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`.
//!
//! Differences from real proptest: no shrinking (a failing case
//! reports its seed instead of a minimised input), no persistence
//! file, and no `#[proptest]` attribute form.

#![forbid(unsafe_code)]

use std::fmt;

/// A failed property within a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl fmt::Display) -> Self {
        TestCaseError {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration (`cases` = inputs generated per test).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    //! The deterministic generator driving value production.

    /// xoshiro256++-based test RNG, seeded per case for
    /// reproducibility.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds the RNG for one test case of one test function.
        pub fn for_case(test_seed: u64, case: u64) -> Self {
            const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
            let mut state = test_seed
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(case.wrapping_mul(PHI));
            let mut s = [0u64; 4];
            for w in &mut s {
                state = state.wrapping_add(PHI);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *w = z ^ (z >> 31);
            }
            TestRng { s }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let out = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        /// Uniform draw from `[0, span)` by widening multiply.
        pub fn below(&mut self, span: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }
    }
}

use test_runner::TestRng;

/// A recipe for generating values of an output type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy (API-compat helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy, as returned by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}
range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
range_strategy_int!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy used by [`any`] for primitives.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyOf<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_prim {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl Strategy for AnyOf<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $gen;
                f(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyOf<$t>;
            fn arbitrary() -> AnyOf<$t> {
                AnyOf(std::marker::PhantomData)
            }
        }
    )*};
}
arbitrary_prim! {
    bool => |rng| rng.next_u64() & 1 == 1,
    u8 => |rng| rng.next_u64() as u8,
    u16 => |rng| rng.next_u64() as u16,
    u32 => |rng| rng.next_u64() as u32,
    u64 => |rng| rng.next_u64(),
    usize => |rng| rng.next_u64() as usize,
    i8 => |rng| rng.next_u64() as i8,
    i16 => |rng| rng.next_u64() as i16,
    i32 => |rng| rng.next_u64() as i32,
    i64 => |rng| rng.next_u64() as i64,
    isize => |rng| rng.next_u64() as isize,
}

/// A weighted-less union of boxed strategies (see `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].new_value(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Size specification for [`vec`]: exact, `a..b`, or `a..=b`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Picks one of several strategies uniformly per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let mut __options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,
        > = ::std::vec::Vec::new();
        $(__options.push(::std::boxed::Box::new($strategy));)+
        $crate::Union::new(__options)
    }};
}

/// Asserts within a proptest body; failures report the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality within a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($lhs), stringify!($rhs), l
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`] (the config expression is
/// hoisted out of the per-test repetition).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                // Distinct deterministic seed per test function.
                let __test_seed: u64 = {
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for b in stringify!($name).bytes() {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x100_0000_01b3);
                    }
                    h
                };
                for __case in 0..(__config.cases as u64) {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(__test_seed, __case);
                    $(let $arg = $crate::Strategy::new_value(&$strategy, &mut __rng);)+
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest {}: case {}/{} failed: {}",
                            stringify!($name), __case, __config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    //! Everything a property test usually imports.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn ranges_stay_in_bounds(x in 10u64..20, y in 0usize..=5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 5);
        }

        fn oneof_and_map_compose(
            v in prop_oneof![Just(1u32), Just(2), (10u32..12)].prop_map(|x| x * 10),
        ) {
            prop_assert!(v == 10 || v == 20 || v == 100 || v == 110, "{v}");
        }

        fn vectors_have_requested_len(
            v in crate::collection::vec(any::<bool>(), 3..=7),
        ) {
            prop_assert!((3..=7).contains(&v.len()));
        }

        fn tuples_generate(t in (any::<bool>(), 1u32..=4, 0i64..10)) {
            prop_assert!(t.1 >= 1 && t.1 <= 4);
            prop_assert!((0..10).contains(&t.2));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case(1, 2);
        let mut b = crate::test_runner::TestRng::for_case(1, 2);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
