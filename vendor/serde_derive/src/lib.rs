//! Minimal offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]`
//! against the vendored `serde` facade (which targets a single JSON
//! value tree) with **no** `syn`/`quote` dependency — the container
//! cannot reach crates.io, so the item is parsed with a small
//! hand-rolled cursor over `proc_macro::TokenTree`s and the impl is
//! emitted as source text.
//!
//! Supported shapes (everything this workspace derives):
//! - structs with named fields, tuple structs (newtype and wider),
//!   unit structs;
//! - enums with unit, newtype, tuple, and struct variants
//!   (externally tagged, like real serde's default);
//! - `#[serde(default)]`, `#[serde(default = "path")]`,
//!   `#[serde(skip_serializing_if = "path")]`, `#[serde(rename = "s")]`
//!   on fields;
//! - `#[serde(rename_all = "...")]` and `#[serde(untagged)]`
//!   (newtype variants) on containers.
//!
//! Unsupported input (generics, lifetimes, unions) fails with a
//! `compile_error!` naming this file, never silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let body = match (&item.kind, mode) {
        (Kind::NamedStruct(fields), Mode::Ser) => gen_struct_ser(&item, fields),
        (Kind::NamedStruct(fields), Mode::De) => gen_struct_de(&item, fields),
        (Kind::TupleStruct(n), Mode::Ser) => gen_tuple_struct_ser(&item, *n),
        (Kind::TupleStruct(n), Mode::De) => gen_tuple_struct_de(&item, *n),
        (Kind::UnitStruct, Mode::Ser) => impl_ser(&item.name, "::serde::Value::Null".into()),
        (Kind::UnitStruct, Mode::De) => impl_de(
            &item.name,
            format!("::std::result::Result::Ok({})", item.name),
        ),
        (Kind::Enum(variants), Mode::Ser) => gen_enum_ser(&item, variants),
        (Kind::Enum(variants), Mode::De) => gen_enum_de(&item, variants),
    };
    match body.parse() {
        Ok(ts) => ts,
        Err(e) => compile_error(&format!(
            "serde_derive (vendored) produced unparseable code for `{}`: {e}",
            item.name
        )),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", format!("vendored serde_derive: {msg}"))
        .parse()
        .expect("compile_error! literal always parses")
}

// ---------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
    rename_all: Option<String>,
    untagged: bool,
    /// Container-level `#[serde(default)]`.
    default_all: bool,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Default, Clone)]
struct FieldAttrs {
    /// `Some(None)` = `#[serde(default)]`, `Some(Some(path))` =
    /// `#[serde(default = "path")]`.
    default: Option<Option<String>>,
    skip_serializing_if: Option<String>,
    rename: Option<String>,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

impl Field {
    /// The JSON key for this field.
    fn key(&self) -> &str {
        self.attrs.rename.as_deref().unwrap_or(&self.name)
    }
}

enum VariantShape {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    fn at_ident(&self, s: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == s)
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Consumes leading attributes, returning the parsed `serde` metas.
    fn take_attrs(&mut self) -> Vec<(String, Option<String>)> {
        let mut metas = Vec::new();
        while self.at_punct('#') {
            self.next();
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Bracket {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    if let (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args))) =
                        (inner.first(), inner.get(1))
                    {
                        if name.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis
                        {
                            metas.extend(parse_serde_metas(args.stream()));
                        }
                    }
                    self.next();
                }
            }
        }
        metas
    }

    /// Consumes `pub`, `pub(...)`, or nothing.
    fn skip_visibility(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.next();
                }
            }
        }
    }
}

/// Parses `name`, `name = "value"` pairs separated by commas.
fn parse_serde_metas(ts: TokenStream) -> Vec<(String, Option<String>)> {
    let mut cur = Cursor::new(ts);
    let mut out = Vec::new();
    loop {
        let name = match cur.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(_) => continue,
            None => break,
        };
        if cur.at_punct('=') {
            cur.next();
            if let Some(TokenTree::Literal(lit)) = cur.next() {
                out.push((name, Some(unquote(&lit.to_string()))));
            }
        } else {
            out.push((name, None));
        }
        if cur.at_punct(',') {
            cur.next();
        }
    }
    out
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cur = Cursor::new(input);
    let metas = cur.take_attrs();
    let mut rename_all = None;
    let mut untagged = false;
    let mut default_all = false;
    for (name, value) in metas {
        match (name.as_str(), value) {
            ("rename_all", Some(v)) => rename_all = Some(v),
            ("untagged", None) => untagged = true,
            ("default", None) => default_all = true,
            ("deny_unknown_fields", None) => {}
            (other, _) => {
                return Err(format!("unsupported container attribute `serde({other})`"))
            }
        }
    }
    cur.skip_visibility();
    let keyword = cur.expect_ident()?;
    let name = cur.expect_ident()?;
    if cur.at_punct('<') {
        return Err(format!("`{name}` is generic; not supported"));
    }
    let kind = match keyword.as_str() {
        "struct" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unsupported enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Item {
        name,
        kind,
        rename_all,
        untagged,
        default_all,
    })
}

/// Parses `attrs vis name: Type, ...` — types are skipped by tracking
/// angle-bracket depth so commas inside generics don't split fields.
fn parse_named_fields(ts: TokenStream) -> Result<Vec<Field>, String> {
    let mut cur = Cursor::new(ts);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let metas = cur.take_attrs();
        if cur.peek().is_none() {
            break;
        }
        cur.skip_visibility();
        let name = cur.expect_ident()?;
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        skip_type(&mut cur);
        let mut attrs = FieldAttrs::default();
        for (meta, value) in metas {
            match (meta.as_str(), value) {
                ("default", v) => attrs.default = Some(v),
                ("skip_serializing_if", Some(v)) => attrs.skip_serializing_if = Some(v),
                ("rename", Some(v)) => attrs.rename = Some(v),
                (other, _) => {
                    return Err(format!(
                        "unsupported field attribute `serde({other})` on `{name}`"
                    ))
                }
            }
        }
        fields.push(Field { name, attrs });
    }
    Ok(fields)
}

/// Skips type tokens up to (and including) the next top-level comma.
fn skip_type(cur: &mut Cursor) {
    let mut depth = 0usize;
    while let Some(t) = cur.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                cur.next();
                return;
            }
            _ => {}
        }
        cur.next();
    }
}

/// Counts top-level comma-separated segments of a tuple-struct body.
fn count_tuple_fields(ts: TokenStream) -> usize {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0usize;
    let mut count = 1;
    let mut last_was_comma = false;
    for t in &toks {
        last_was_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                last_was_comma = true;
            }
            _ => {}
        }
    }
    if last_was_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(ts: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cur = Cursor::new(ts);
    let mut variants = Vec::new();
    while cur.peek().is_some() {
        let _metas = cur.take_attrs();
        if cur.peek().is_none() {
            break;
        }
        let name = cur.expect_ident()?;
        let shape = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                cur.next();
                if n == 1 {
                    VariantShape::Newtype
                } else {
                    VariantShape::Tuple(n)
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                cur.next();
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the comma.
        if cur.at_punct('=') {
            while let Some(t) = cur.peek() {
                if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                cur.next();
            }
        }
        if cur.at_punct(',') {
            cur.next();
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

/// Applies the container's `rename_all` rule to a variant name.
fn rename(variant: &str, rule: Option<&str>) -> String {
    match rule {
        Some("snake_case") => {
            let mut out = String::new();
            for (i, c) in variant.chars().enumerate() {
                if c.is_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.extend(c.to_lowercase());
                } else {
                    out.push(c);
                }
            }
            out
        }
        Some("lowercase") => variant.to_lowercase(),
        Some("UPPERCASE") => variant.to_uppercase(),
        Some("SCREAMING_SNAKE_CASE") => rename(variant, Some("snake_case")).to_uppercase(),
        Some("kebab-case") => rename(variant, Some("snake_case")).replace('_', "-"),
        Some("camelCase") => {
            let mut cs = variant.chars();
            match cs.next() {
                Some(f) => f.to_lowercase().collect::<String>() + cs.as_str(),
                None => String::new(),
            }
        }
        _ => variant.to_string(),
    }
}

fn impl_ser(name: &str, body: String) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn impl_de(name: &str, body: String) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}\n"
    )
}

/// `insert` lines for named fields read from expressions like `&self.f`
/// or a pattern binding.
fn ser_named_fields(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let mut out = String::from("let mut __m = ::serde::value::Map::new();\n");
    for f in fields {
        let expr = access(&f.name);
        let insert = format!(
            "__m.insert({key:?}.to_string(), ::serde::Serialize::to_value({expr}));",
            key = f.key(),
            expr = expr
        );
        if let Some(pred) = &f.attrs.skip_serializing_if {
            out.push_str(&format!("if !({pred}({expr})) {{ {insert} }}\n"));
        } else {
            out.push_str(&insert);
            out.push('\n');
        }
    }
    out
}

/// Field initialisers for named fields taken from a map binding `__obj`.
/// With `default_all` (container-level `#[serde(default)]`), fields
/// without their own default fall back to the field type's default.
fn de_named_fields(type_name: &str, fields: &[Field], default_all: bool) -> String {
    let mut out = String::new();
    for f in fields {
        let missing = match &f.attrs.default {
            Some(None) => "::std::default::Default::default()".to_string(),
            Some(Some(path)) => format!("{path}()"),
            None if default_all => "::std::default::Default::default()".to_string(),
            None => format!(
                "return ::std::result::Result::Err(::serde::Error::custom(\
                 \"{type_name}: missing field `{key}`\"))",
                key = f.key()
            ),
        };
        out.push_str(&format!(
            "{name}: match __obj.get({key:?}) {{\n\
                 ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                 ::std::option::Option::None => {missing},\n\
             }},\n",
            name = f.name,
            key = f.key()
        ));
    }
    out
}

fn gen_struct_ser(item: &Item, fields: &[Field]) -> String {
    let body = format!(
        "{}::serde::Value::Object(__m)",
        ser_named_fields(fields, |f| format!("&self.{f}"))
    );
    impl_ser(&item.name, body)
}

fn gen_struct_de(item: &Item, fields: &[Field]) -> String {
    let name = &item.name;
    let body = format!(
        "let __obj = match __v {{\n\
             ::serde::Value::Object(__m) => __m,\n\
             _ => return ::std::result::Result::Err(::serde::Error::custom(\"{name}: expected object\")),\n\
         }};\n\
         ::std::result::Result::Ok({name} {{\n{fields}\n}})",
        fields = de_named_fields(name, fields, item.default_all)
    );
    impl_de(name, body)
}

fn gen_tuple_struct_ser(item: &Item, n: usize) -> String {
    let body = if n == 1 {
        // Newtype structs are transparent, like real serde.
        "::serde::Serialize::to_value(&self.0)".to_string()
    } else {
        let items: Vec<String> = (0..n)
            .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
            .collect();
        format!("::serde::Value::Array(vec![{}])", items.join(", "))
    };
    impl_ser(&item.name, body)
}

fn gen_tuple_struct_de(item: &Item, n: usize) -> String {
    let name = &item.name;
    let body = if n == 1 {
        format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
    } else {
        let items: Vec<String> = (0..n)
            .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
            .collect();
        format!(
            "let __a = match __v {{\n\
                 ::serde::Value::Array(__a) if __a.len() == {n} => __a,\n\
                 _ => return ::std::result::Result::Err(::serde::Error::custom(\"{name}: expected array of {n}\")),\n\
             }};\n\
             ::std::result::Result::Ok({name}({items}))",
            items = items.join(", ")
        )
    };
    impl_de(name, body)
}

fn gen_enum_ser(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    let rule = item.rename_all.as_deref();
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        let key = rename(vname, rule);
        let arm = match &v.shape {
            VariantShape::Unit => format!(
                "{name}::{vname} => ::serde::Value::String({key:?}.to_string()),\n"
            ),
            VariantShape::Newtype => {
                if item.untagged {
                    format!("{name}::{vname}(__f0) => ::serde::Serialize::to_value(__f0),\n")
                } else {
                    format!(
                        "{name}::{vname}(__f0) => {{\n\
                             let mut __o = ::serde::value::Map::new();\n\
                             __o.insert({key:?}.to_string(), ::serde::Serialize::to_value(__f0));\n\
                             ::serde::Value::Object(__o)\n\
                         }}\n"
                    )
                }
            }
            VariantShape::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!(
                    "{name}::{vname}({binds}) => {{\n\
                         let mut __o = ::serde::value::Map::new();\n\
                         __o.insert({key:?}.to_string(), ::serde::Value::Array(vec![{items}]));\n\
                         ::serde::Value::Object(__o)\n\
                     }}\n",
                    binds = binds.join(", "),
                    items = items.join(", ")
                )
            }
            VariantShape::Struct(fields) => {
                let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                format!(
                    "{name}::{vname} {{ {binds} }} => {{\n\
                         {inner}\
                         let mut __o = ::serde::value::Map::new();\n\
                         __o.insert({key:?}.to_string(), ::serde::Value::Object(__m));\n\
                         ::serde::Value::Object(__o)\n\
                     }}\n",
                    binds = binds.join(", "),
                    inner = ser_named_fields(fields, |f| f.to_string())
                )
            }
        };
        arms.push_str(&arm);
    }
    impl_ser(name, format!("match self {{\n{arms}}}"))
}

fn gen_enum_de(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    if item.untagged {
        let mut body = String::new();
        for v in variants {
            match &v.shape {
                VariantShape::Newtype => body.push_str(&format!(
                    "if let ::std::result::Result::Ok(__x) = ::serde::Deserialize::from_value(__v) {{\n\
                         return ::std::result::Result::Ok({name}::{vname}(__x));\n\
                     }}\n",
                    vname = v.name
                )),
                VariantShape::Unit => body.push_str(&format!(
                    "if __v.is_null() {{ return ::std::result::Result::Ok({name}::{vname}); }}\n",
                    vname = v.name
                )),
                _ => {
                    return compile_body_error(format!(
                        "untagged enum `{name}`: only unit/newtype variants supported"
                    ))
                }
            }
        }
        body.push_str(&format!(
            "::std::result::Result::Err(::serde::Error::custom(\
             \"data did not match any variant of untagged enum {name}\"))"
        ));
        return impl_de(name, body);
    }

    let rule = item.rename_all.as_deref();
    let mut string_arms = String::new();
    let mut object_arms = String::new();
    for v in variants {
        let vname = &v.name;
        let key = rename(vname, rule);
        match &v.shape {
            VariantShape::Unit => string_arms.push_str(&format!(
                "{key:?} => ::std::result::Result::Ok({name}::{vname}),\n"
            )),
            VariantShape::Newtype => object_arms.push_str(&format!(
                "{key:?} => ::std::result::Result::Ok({name}::{vname}(\
                 ::serde::Deserialize::from_value(__inner)?)),\n"
            )),
            VariantShape::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                    .collect();
                object_arms.push_str(&format!(
                    "{key:?} => {{\n\
                         let __a = match __inner {{\n\
                             ::serde::Value::Array(__a) if __a.len() == {n} => __a,\n\
                             _ => return ::std::result::Result::Err(::serde::Error::custom(\"{name}::{vname}: expected array of {n}\")),\n\
                         }};\n\
                         ::std::result::Result::Ok({name}::{vname}({items}))\n\
                     }}\n",
                    items = items.join(", ")
                ));
            }
            VariantShape::Struct(fields) => object_arms.push_str(&format!(
                "{key:?} => {{\n\
                     let __obj = match __inner {{\n\
                         ::serde::Value::Object(__m) => __m,\n\
                         _ => return ::std::result::Result::Err(::serde::Error::custom(\"{name}::{vname}: expected object\")),\n\
                     }};\n\
                     ::std::result::Result::Ok({name}::{vname} {{\n{fields}\n}})\n\
                 }}\n",
                fields = de_named_fields(&format!("{name}::{vname}"), fields, false)
            )),
        }
    }
    let body = format!(
        "match __v {{\n\
             ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {string_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(format!(\
                     \"unknown variant `{{__other}}` of enum {name}\"))),\n\
             }},\n\
             ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__k, __inner) = match __m.iter().next() {{\n\
                     ::std::option::Option::Some(__kv) => __kv,\n\
                     ::std::option::Option::None => return ::std::result::Result::Err(::serde::Error::custom(\"{name}: empty object\")),\n\
                 }};\n\
                 match __k.as_str() {{\n\
                     {object_arms}\
                     __other => ::std::result::Result::Err(::serde::Error::custom(format!(\
                         \"unknown variant `{{__other}}` of enum {name}\"))),\n\
                 }}\n\
             }}\n\
             _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"{name}: expected variant string or single-key object\")),\n\
         }}"
    );
    impl_de(name, body)
}

fn compile_body_error(msg: String) -> String {
    format!("compile_error!({:?});", format!("vendored serde_derive: {msg}"))
}
