#!/bin/bash
# Regenerates every table and figure of the paper's evaluation, plus the
# extension experiments (ablations, future-work). Output also lands as
# CSV/JSON under results/.
#
# For a crash-tolerant equivalent of the core figures, prefer
#   cargo run --release -p bench --bin run_figures
# which isolates panics per figure, checkpoints to
# results/all_figures.journal.jsonl, and resumes with AC_RESUME=1.
set -e
cd "$(dirname "$0")"
BINS="table1_config table_storage fig03_mpki fig04_cpi fig05_partial_tags \
      fig06_vs_bigger fig07_phase_maps fig08_fifo_mru fig09_associativity \
      fig10_store_buffer headline sec44_five_policy sec46_l1 sec47_sbar"
EXT="ablation_history ablation_lfu ablation_sbar ablation_xor_tags \
     multicore prefetch_adaptivity related_dip synthesis"
for bin in $BINS ${RUN_EXTENSIONS:+$EXT}; do
    echo "=== $bin ==="
    cargo run --release -q -p bench --bin "$bin"
    echo
done
echo "done. Set RUN_EXTENSIONS=1 to include ablations and future-work runs."
